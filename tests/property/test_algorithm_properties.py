"""Property-based tests (hypothesis) for the exact algorithms, with
networkx as an oracle where available."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rng
from repro.algorithms import (
    all_pairs_dijkstra,
    bfs_hop_distances,
    dijkstra,
    dijkstra_path,
    is_k_covering,
    kruskal_mst,
    meir_moon_k_covering,
    prim_mst,
    spanning_tree_weight,
)
from repro.graphs import generators


@st.composite
def weighted_connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    p = draw(st.floats(min_value=0.05, max_value=0.5))
    rng = Rng(seed)
    graph = generators.erdos_renyi_graph(n, p, rng)
    return generators.assign_random_weights(graph, rng, 0.01, 10.0)


class TestShortestPathProperties:
    @given(weighted_connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, graph):
        distances = all_pairs_dijkstra(graph)
        vertices = graph.vertex_list()[:6]
        for x in vertices:
            for y in vertices:
                for z in vertices:
                    assert (
                        distances[x][z]
                        <= distances[x][y] + distances[y][z] + 1e-9
                    )

    @given(weighted_connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, graph):
        distances = all_pairs_dijkstra(graph)
        vertices = graph.vertex_list()[:8]
        for x in vertices:
            for y in vertices:
                assert abs(distances[x][y] - distances[y][x]) < 1e-9

    @given(weighted_connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_path_weight_equals_distance(self, graph):
        vertices = graph.vertex_list()
        s, t = vertices[0], vertices[-1]
        path, weight = dijkstra_path(graph, s, t)
        assert abs(graph.path_weight(path) - weight) < 1e-9
        assert path[0] == s and path[-1] == t
        assert graph.is_path(path)

    @given(weighted_connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, graph):
        nxg = nx.Graph()
        for u, v, w in graph.edges():
            nxg.add_edge(u, v, weight=w)
        ours, _ = dijkstra(graph, 0)
        theirs = nx.single_source_dijkstra_path_length(nxg, 0)
        for v, d in theirs.items():
            assert abs(ours[v] - d) < 1e-9

    @given(weighted_connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_hop_distance_lower_bounds_weighted_path_hops(self, graph):
        """h(x, y) <= hops of any shortest weighted path."""
        vertices = graph.vertex_list()
        s, t = vertices[0], vertices[-1]
        hops = bfs_hop_distances(graph, s)[t]
        path, _ = dijkstra_path(graph, s, t)
        assert hops <= len(path) - 1


class TestMstProperties:
    @given(weighted_connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_kruskal_prim_agree(self, graph):
        wk = spanning_tree_weight(graph, kruskal_mst(graph))
        wp = spanning_tree_weight(graph, prim_mst(graph))
        assert abs(wk - wp) < 1e-9

    @given(weighted_connected_graphs())
    @settings(max_examples=20, deadline=None)
    def test_mst_weight_minimal_vs_networkx(self, graph):
        nxg = nx.Graph()
        for u, v, w in graph.edges():
            nxg.add_edge(u, v, weight=w)
        expected = sum(
            d["weight"]
            for *_, d in nx.minimum_spanning_edges(nxg, data=True)
        )
        assert (
            abs(spanning_tree_weight(graph, kruskal_mst(graph)) - expected)
            < 1e-9
        )

    @given(weighted_connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_mst_has_v_minus_1_edges_and_spans(self, graph):
        tree = kruskal_mst(graph)
        assert len(tree) == graph.num_vertices - 1
        from repro.algorithms import UnionFind

        uf = UnionFind(graph.vertices())
        for u, v in tree:
            uf.union(u, v)
        root = uf.find(graph.vertex_list()[0])
        assert all(uf.find(v) == root for v in graph.vertices())


class TestCoveringProperties:
    @given(
        weighted_connected_graphs(),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_meir_moon_size_and_validity(self, graph, k):
        if graph.num_vertices < k + 1:
            return
        covering = meir_moon_k_covering(graph, k)
        assert is_k_covering(graph, covering, k)
        assert len(covering) <= graph.num_vertices // (k + 1)
        assert len(covering) >= 1
