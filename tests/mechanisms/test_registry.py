"""Unit tests for :mod:`repro.mechanisms` — the release-mechanism
registry and its auto-selection contest."""

from __future__ import annotations

import pytest

from repro import (
    MechanismError,
    PrivacyParams,
    Rng,
    auto_select_mechanism,
    available_mechanisms,
    get_mechanism,
    register_mechanism,
)
from repro.algorithms.traversal import is_connected
from repro.apsp import predicted_hub_scale
from repro.core.distance_oracle import all_pairs_noise_scale
from repro.graphs import generators
from repro.mechanisms import (
    HUB_BOUNDED_MIN_VERTICES,
    HUB_MIN_VERTICES,
    HUB_SELECTION_MARGIN,
    Mechanism,
    MechanismParams,
    registered_mechanisms,
    standalone_mechanisms,
)


def legacy_select_mechanism(graph, budget, weight_bound=None):
    """The pre-registry if/elif ladder, frozen verbatim as the
    equivalence reference for the contest."""
    if (
        not graph.directed
        and graph.num_edges == graph.num_vertices - 1
        and is_connected(graph)
    ):
        return "tree"
    if weight_bound is not None:
        if graph.num_vertices >= HUB_BOUNDED_MIN_VERTICES:
            return "hub-bounded"
        return "bounded-weight"
    n = graph.num_vertices
    baseline = (
        "all-pairs-advanced" if budget.delta > 0 else "all-pairs-basic"
    )
    baseline_scale = all_pairs_noise_scale(n, budget.eps, budget.delta)
    if (
        n >= HUB_MIN_VERTICES
        and predicted_hub_scale(n, budget.eps, budget.delta)
        * HUB_SELECTION_MARGIN
        < baseline_scale
    ):
        return "hub-set"
    return baseline


class TestRegistry:
    def test_all_eight_mechanisms_registered(self):
        assert available_mechanisms() == (
            "all-pairs-advanced",
            "all-pairs-basic",
            "boundary-relay",
            "bounded-weight",
            "hub-bounded",
            "hub-set",
            "single-pair",
            "tree",
        )

    def test_standalone_excludes_workload_mechanisms(self):
        names = standalone_mechanisms()
        assert "single-pair" not in names
        assert "boundary-relay" not in names
        assert set(names) == {
            "tree",
            "bounded-weight",
            "hub-bounded",
            "all-pairs-basic",
            "all-pairs-advanced",
            "hub-set",
        }

    def test_get_mechanism_unknown_name(self):
        with pytest.raises(MechanismError) as excinfo:
            get_mechanism("quantum")
        assert "quantum" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        class Dup(Mechanism):
            name = "tree"  # collides with the registered tree entry

        with pytest.raises(MechanismError):
            register_mechanism(Dup())

    def test_unnamed_registration_rejected(self):
        with pytest.raises(MechanismError):
            register_mechanism(Mechanism())

    def test_registration_order_is_stable(self):
        names = [m.name for m in registered_mechanisms()]
        # Tie-break order: tree first, baselines before hub-set.
        assert names.index("tree") == 0
        assert names.index("all-pairs-basic") < names.index("hub-set")
        assert names.index("all-pairs-advanced") < names.index("hub-set")


class TestPredictions:
    """Every registered mechanism predicts a positive noise scale."""

    def test_predicted_scales_positive(self, rng):
        graph = generators.grid_graph(6, 6)
        params = MechanismParams(
            budget=PrivacyParams(1.0, 1e-6),
            weight_bound=2.0,
            pairs=(((0, 0), (5, 5)),),
            sites=tuple(graph.vertices())[:6],
        )
        tree = generators.random_tree(12, rng)
        for mechanism in registered_mechanisms():
            target = tree if mechanism.name == "tree" else graph
            scale = mechanism.predicted_noise_scale(target, params)
            assert scale > 0.0, mechanism.name

    def test_workload_mechanisms_never_auto_eligible(self):
        graph = generators.grid_graph(6, 6)
        params = MechanismParams(
            budget=PrivacyParams(1.0),
            pairs=(((0, 0), (5, 5)),),
            sites=tuple(graph.vertices()),
        )
        assert not get_mechanism("single-pair").auto_eligible(
            graph, params
        )
        assert not get_mechanism("boundary-relay").auto_eligible(
            graph, params
        )

    def test_selection_score_applies_margin(self):
        graph = generators.grid_graph(16, 16)
        params = MechanismParams(budget=PrivacyParams(1.0))
        hub = get_mechanism("hub-set")
        assert hub.selection_score(graph, params) == (
            HUB_SELECTION_MARGIN
            * hub.predicted_noise_scale(graph, params)
        )


class TestAutoSelectionEquivalence:
    """The registry contest makes seeded-identical choices to the
    retired if/elif ladder — the ISSUE's equivalence bar, across
    V in {64, 256, 1024} grid / sparse / tree families."""

    BUDGETS = [
        PrivacyParams(1.0),
        PrivacyParams(0.25),
        PrivacyParams(4.0),
        PrivacyParams(1.0, 1e-6),
        PrivacyParams(0.5, 1e-4),
    ]
    BOUNDS = [None, 2.0]

    def _families(self, v, rng):
        side = int(round(v ** 0.5))
        return [
            generators.grid_graph(side, side),
            generators.erdos_renyi_graph(v, 2.0 / v, rng),
            generators.random_tree(v, rng),
        ]

    @pytest.mark.parametrize("v", [64, 256, 1024])
    def test_equivalence_across_families(self, v):
        rng = Rng(20160501 + v)
        for graph in self._families(v, rng):
            for budget in self.BUDGETS:
                for bound in self.BOUNDS:
                    assert auto_select_mechanism(
                        graph, budget, bound
                    ) == legacy_select_mechanism(
                        graph, budget, bound
                    ), (v, graph.num_edges, budget, bound)

    def test_equivalence_at_road_scale_with_bound(self):
        # The hub-bounded crossover (V >= 4096, bound declared).
        graph = generators.grid_graph(64, 64)
        for budget in (PrivacyParams(1.0), PrivacyParams(1.0, 1e-6)):
            assert auto_select_mechanism(
                graph, budget, 1.0
            ) == legacy_select_mechanism(graph, budget, 1.0)
            assert auto_select_mechanism(graph, budget, 1.0) == (
                "hub-bounded"
            )

    def test_equivalence_on_ladder_corner_cases(self, rng):
        # E = V - 1 without being a tree (the misclassification trap).
        almost = generators.cycle_graph(3)
        almost.add_vertex(99)
        budget = PrivacyParams(1.0)
        assert auto_select_mechanism(
            almost, budget
        ) == legacy_select_mechanism(almost, budget)
        # Tiny graphs (V = 1, V = 2).
        single = generators.path_graph(1)
        pair = generators.path_graph(2)
        for graph in (single, pair):
            for bound in (None, 1.0):
                assert auto_select_mechanism(
                    graph, budget, bound
                ) == legacy_select_mechanism(graph, budget, bound)

    def test_tree_with_declared_bound_still_selects_tree(self, rng):
        tree = generators.random_tree(64, rng)
        assert (
            auto_select_mechanism(tree, PrivacyParams(1.0), 5.0)
            == "tree"
        )


class TestServiceIntegration:
    def test_workload_mechanism_cannot_back_a_service(self, rng):
        from repro import DistanceService, PrivacyError

        grid = generators.grid_graph(3, 3)
        for name in ("single-pair", "boundary-relay"):
            with pytest.raises(PrivacyError):
                DistanceService(grid, 1.0, rng, mechanism=name)

    def test_forced_build_matches_direct_mechanism_build(self, rng):
        """Forcing a mechanism through the service draws the same
        noise as calling the registry entry directly (same rng
        consumption, same synopsis values)."""
        from repro import DistanceService

        grid = generators.grid_graph(4, 4)
        service = DistanceService(grid, 1.0, Rng(7), mechanism="hub-set")
        direct = get_mechanism("hub-set").build(
            grid, MechanismParams(budget=PrivacyParams(1.0)), Rng(7)
        )
        assert service.query((0, 0), (3, 3)) == direct.distance(
            (0, 0), (3, 3)
        )

    def test_mechanism_error_is_a_privacy_error(self):
        from repro import PrivacyError, ReproError

        assert issubclass(MechanismError, PrivacyError)
        assert issubclass(MechanismError, ReproError)
