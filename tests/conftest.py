"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Rng, WeightedGraph
from repro.graphs import RootedTree, generators


@pytest.fixture
def rng() -> Rng:
    """A deterministic RNG; tests that need independent streams call
    ``rng.spawn()``."""
    return Rng(seed=12345)


@pytest.fixture
def triangle() -> WeightedGraph:
    """A weighted triangle: 0-1 (1.0), 1-2 (2.0), 0-2 (4.0)."""
    return WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])


@pytest.fixture
def small_tree() -> WeightedGraph:
    """A 7-vertex tree:

            0
           / \\
          1   2
         / \\   \\
        3   4   5
                 \\
                  6
    with weights 1..6 on edges in label order.
    """
    return WeightedGraph.from_edges(
        [
            (0, 1, 1.0),
            (0, 2, 2.0),
            (1, 3, 3.0),
            (1, 4, 4.0),
            (2, 5, 5.0),
            (5, 6, 6.0),
        ]
    )


@pytest.fixture
def small_rooted_tree(small_tree: WeightedGraph) -> RootedTree:
    return RootedTree(small_tree, root=0)


@pytest.fixture
def path10() -> WeightedGraph:
    """The path graph on 10 vertices with weight i+1 on edge (i, i+1)."""
    graph = generators.path_graph(10)
    for i in range(9):
        graph.set_weight(i, i + 1, float(i + 1))
    return graph


@pytest.fixture
def grid5() -> WeightedGraph:
    """The unit-weight 5x5 grid."""
    return generators.grid_graph(5, 5)
