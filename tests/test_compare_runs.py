"""Unit tests for :mod:`benchmarks.compare_runs` — the perf-trajectory
regression comparator."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.compare_runs import (
    compare,
    compare_p99,
    load_p99,
    load_seconds,
    main,
    missing_experiments,
)


def _run_file(
    tmp_path: Path, name: str, seconds: dict, p99: dict | None = None
) -> Path:
    path = tmp_path / name
    experiments = {
        tag: {"module": f"benchmarks.bench_{tag}", "seconds": s}
        for tag, s in seconds.items()
    }
    for tag, value in (p99 or {}).items():
        experiments[tag]["latency"] = {
            "p50": value / 2.0,
            "p95": value * 0.9,
            "p99": value,
            "count": 1000,
        }
    path.write_text(json.dumps({"seed": 0, "experiments": experiments}))
    return path


class TestCompare:
    def test_flags_regressions_beyond_threshold(self):
        rows, flagged = compare(
            {"E1": 1.0, "E2": 1.0}, {"E1": 1.3, "E2": 1.2}, threshold=0.25
        )
        assert flagged == ["E1"]
        by_tag = {r[0]: r for r in rows}
        assert by_tag["E1"][4].startswith("REGRESSED")
        assert by_tag["E2"][4] == "ok"

    def test_speedups_never_flagged(self):
        _, flagged = compare({"E1": 2.0}, {"E1": 0.5})
        assert flagged == []

    def test_new_and_removed_experiments_reported_not_flagged(self):
        rows, flagged = compare({"E1": 1.0}, {"E2": 1.0})
        assert flagged == []
        statuses = {r[0]: r[4] for r in rows}
        assert statuses == {"E1": "removed", "E2": "new"}

    def test_sub_millisecond_bases_skipped(self):
        rows, flagged = compare({"E1": 0.0}, {"E1": 5.0})
        assert flagged == []
        assert rows[0][4] == "too fast"

    def test_numeric_experiment_ordering(self):
        rows, _ = compare(
            {"E2": 1.0, "E10": 1.0, "E1": 1.0},
            {"E2": 1.0, "E10": 1.0, "E1": 1.0},
        )
        assert [r[0] for r in rows] == ["E1", "E2", "E10"]

    def test_multi_number_tags_order_by_first_number(self):
        """Regression: tags carrying a second number (like a vertex
        count) used to sort by the concatenation of every digit —
        ``E19_v4096`` as 194096, after ``E20`` — instead of by the
        experiment number alone."""
        tags = {"E20": 1.0, "E19_v4096": 1.0, "E2": 1.0, "E19": 1.0}
        rows, _ = compare(tags, tags)
        assert [r[0] for r in rows] == ["E2", "E19", "E19_v4096", "E20"]


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        base = _run_file(tmp_path, "base.json", {"E1": 1.0})
        ok = _run_file(tmp_path, "ok.json", {"E1": 1.1})
        bad = _run_file(tmp_path, "bad.json", {"E1": 2.0})
        assert main([str(base), str(ok)]) == 0
        assert "no regressions" in capsys.readouterr().out
        assert main([str(base), str(bad)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path, capsys):
        base = _run_file(tmp_path, "base.json", {"E1": 1.0})
        new = _run_file(tmp_path, "new.json", {"E1": 1.4})
        assert main([str(base), str(new), "--threshold", "0.5"]) == 0
        capsys.readouterr()

    def test_rejects_non_report_files(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_seconds(path)

    def test_reads_real_committed_report(self):
        # The repo root carries the baseline BENCH_runall.json this
        # comparator is pointed at in CI; it must stay loadable.
        report = Path(__file__).resolve().parent.parent / "BENCH_runall.json"
        seconds = load_seconds(report)
        assert seconds  # at least one experiment recorded
        assert all(s >= 0 for s in seconds.values())


class TestP99:
    def test_growth_beyond_threshold_warned(self):
        rows, warned = compare_p99(
            {"E16": (10e-6, 1000), "E18": (10e-6, 1000)},
            {"E16": (30e-6, 1000), "E18": (11e-6, 1000)},
            threshold=0.25,
        )
        assert warned == ["E16"]
        statuses = {r[0]: r[6] for r in rows}
        assert statuses["E16"].startswith("WARN")
        assert statuses["E18"] == "ok"

    def test_rendered_in_microseconds_with_counts(self):
        rows, _ = compare_p99(
            {"E16": (10e-6, 500)}, {"E16": (10e-6, 2000)}
        )
        assert rows[0][1] == "10.0"
        assert rows[0][2] == "500"
        assert rows[0][3] == "10.0"
        assert rows[0][4] == "2000"

    def test_new_and_removed_never_warned(self):
        rows, warned = compare_p99(
            {"E16": (1e-6, 100)}, {"E19": (5e-6, 200)}
        )
        assert warned == []
        # Sample counts still appear on the surviving side.
        by_tag = {r[0]: r for r in rows}
        assert by_tag["E16"][2] == "100"
        assert by_tag["E19"][4] == "200"

    def test_load_p99_skips_experiments_without_latency(self, tmp_path):
        path = _run_file(
            tmp_path,
            "run.json",
            {"E1": 1.0, "E16": 2.0},
            p99={"E16": 20e-6},
        )
        loaded = load_p99(path)
        assert set(loaded) == {"E16"}
        assert loaded["E16"][0] == pytest.approx(20e-6)
        assert loaded["E16"][1] == 1000

    def test_sample_counts_printed(self, tmp_path, capsys):
        base = _run_file(
            tmp_path, "base.json", {"E16": 1.0}, p99={"E16": 10e-6}
        )
        new = _run_file(
            tmp_path, "new.json", {"E16": 1.0}, p99={"E16": 10e-6}
        )
        assert main([str(base), str(new)]) == 0
        out = capsys.readouterr().out
        assert "base n" in out
        assert "new n" in out
        assert "1000" in out

    def test_warning_is_not_an_exit_code(self, tmp_path, capsys):
        # p99 regressions are informational: wall-clock is fine, so
        # the comparator must exit 0 while still printing the warning.
        base = _run_file(
            tmp_path, "base.json", {"E16": 1.0}, p99={"E16": 10e-6}
        )
        new = _run_file(
            tmp_path, "new.json", {"E16": 1.0}, p99={"E16": 100e-6}
        )
        assert main([str(base), str(new)]) == 0
        captured = capsys.readouterr()
        assert "per-query p99 latency (warn-only)" in captured.out
        assert "does not fail the check" in captured.err

    def test_wall_clock_still_gates(self, tmp_path, capsys):
        base = _run_file(
            tmp_path, "base.json", {"E16": 1.0}, p99={"E16": 10e-6}
        )
        new = _run_file(
            tmp_path, "new.json", {"E16": 2.0}, p99={"E16": 10e-6}
        )
        assert main([str(base), str(new)]) == 1
        capsys.readouterr()


class TestP99Gate:
    def test_gate_promotes_warning_to_failure(self, tmp_path, capsys):
        base = _run_file(
            tmp_path, "base.json", {"E16": 1.0}, p99={"E16": 10e-6}
        )
        new = _run_file(
            tmp_path, "new.json", {"E16": 1.0}, p99={"E16": 100e-6}
        )
        assert main([str(base), str(new), "--gate-p99", "0.5"]) == 1
        captured = capsys.readouterr()
        assert "per-query p99 latency (gated)" in captured.out
        assert "gated by --gate-p99" in captured.err

    def test_gate_passes_below_its_threshold(self, tmp_path, capsys):
        # The gate threshold is independent of --threshold: a 40%
        # p99 growth passes a 0.5 gate even with a tight wall gate.
        base = _run_file(
            tmp_path, "base.json", {"E16": 1.0}, p99={"E16": 10e-6}
        )
        new = _run_file(
            tmp_path, "new.json", {"E16": 1.0}, p99={"E16": 14e-6}
        )
        assert main(
            [str(base), str(new), "--gate-p99", "0.5",
             "--threshold", "0.1"]
        ) == 0
        capsys.readouterr()

    def test_default_stays_warn_only(self, tmp_path, capsys):
        # Without --gate-p99 the same growth is a warning, exit 0.
        base = _run_file(
            tmp_path, "base.json", {"E16": 1.0}, p99={"E16": 10e-6}
        )
        new = _run_file(
            tmp_path, "new.json", {"E16": 1.0}, p99={"E16": 100e-6}
        )
        assert main([str(base), str(new)]) == 0
        captured = capsys.readouterr()
        assert "(warn-only)" in captured.out

class TestRequireExperiments:
    def test_reports_which_side_is_missing(self):
        lines = missing_experiments(
            ["E1", "E2", "E3", "E4"],
            {"E1": 1.0, "E3": 1.0},
            {"E1": 1.0, "E2": 1.0},
        )
        assert lines == [
            "E2 missing from base run",
            "E3 missing from new run",
            "E4 missing from base and new run",
        ]

    def test_all_present_is_empty(self):
        assert missing_experiments(
            ["E1"], {"E1": 1.0}, {"E1": 2.0}
        ) == []

    def test_missing_tag_fails_the_check(self, tmp_path, capsys):
        base = _run_file(tmp_path, "base.json", {"E1": 1.0, "E16": 1.0})
        new = _run_file(tmp_path, "new.json", {"E1": 1.0})
        code = main(
            [str(base), str(new), "--require-experiments", "E1", "E16"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "E16 missing from new run" in err
        assert "1 required experiment(s) missing" in err

    def test_present_tags_exit_zero(self, tmp_path, capsys):
        base = _run_file(tmp_path, "base.json", {"E1": 1.0, "E16": 1.0})
        new = _run_file(tmp_path, "new.json", {"E1": 1.0, "E16": 1.1})
        assert main(
            [str(base), str(new), "--require-experiments", "E1", "E16"]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_without_flag_missing_tag_stays_informational(
        self, tmp_path, capsys
    ):
        # The pre-flag behaviour is unchanged: a dropped experiment is
        # reported as "removed" but never fails the check.
        base = _run_file(tmp_path, "base.json", {"E1": 1.0, "E16": 1.0})
        new = _run_file(tmp_path, "new.json", {"E1": 1.0})
        assert main([str(base), str(new)]) == 0
        assert "removed" in capsys.readouterr().out

    def test_regression_message_still_printed_alongside(
        self, tmp_path, capsys
    ):
        # A wall-clock regression and a missing requirement both
        # surface; exit code is 1 either way.
        base = _run_file(tmp_path, "base.json", {"E1": 1.0, "E16": 1.0})
        new = _run_file(tmp_path, "new.json", {"E1": 2.0})
        code = main(
            [str(base), str(new), "--require-experiments", "E16"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "E16 missing from new run" in err
        assert "regressed" in err


class TestP99GatePrecedence:
    def test_wall_clock_failure_takes_precedence(self, tmp_path, capsys):
        # Both gates trip: the exit code is still 1 and both messages
        # are printed.
        base = _run_file(
            tmp_path, "base.json", {"E16": 1.0}, p99={"E16": 10e-6}
        )
        new = _run_file(
            tmp_path, "new.json", {"E16": 2.0}, p99={"E16": 100e-6}
        )
        assert main([str(base), str(new), "--gate-p99", "0.5"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "(gated)" in captured.out
