"""Unit tests for :mod:`repro.core.lower_bounds` — the Figure 2/3
gadgets and the reconstruction reductions (Lemmas 5.2–5.4, B.2, B.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GraphError, Rng
from repro.core import lower_bounds as lb
from repro.dp import bounds


class TestHamming:
    def test_basic(self):
        assert lb.hamming_distance([0, 1, 1], [0, 1, 1]) == 0
        assert lb.hamming_distance([0, 1, 1], [1, 1, 0]) == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            lb.hamming_distance([0], [0, 1])


class TestPathGadget:
    def test_figure2_shape(self):
        gadget = lb.parallel_path_gadget(5)
        assert gadget.num_vertices == 6
        assert gadget.num_edges == 10
        for i in range(1, 6):
            keys = gadget.parallel_keys(i - 1, i)
            assert set(keys) == {("e", i, 0), ("e", i, 1)}

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            lb.parallel_path_gadget(0)

    def test_encoding(self):
        bits = [1, 0, 1]
        weights = lb.path_weights_from_bits(bits)
        assert weights[("e", 1, 1)] == 0.0
        assert weights[("e", 1, 0)] == 1.0
        assert weights[("e", 2, 0)] == 0.0
        assert weights[("e", 3, 1)] == 0.0

    def test_encoding_rejects_non_bits(self):
        with pytest.raises(ValueError):
            lb.path_weights_from_bits([0, 2])
        with pytest.raises(ValueError):
            lb.path_weights_from_bits([])

    def test_shortest_path_weight_zero(self):
        """The encoded instance always has a 0-weight s-t path."""
        bits = [0, 1, 1, 0]
        gadget = lb.parallel_path_gadget(4)
        weights = lb.path_weights_from_bits(bits)
        keys = lb.exact_gadget_path(gadget, weights)
        concrete = gadget.with_weights(weights)
        assert concrete.path_weight(keys) == 0.0

    def test_exact_solver_reconstructs_perfectly(self, rng):
        """Lemma 5.2 applied to a non-private solver: Hamming 0 —
        the blatant privacy violation."""
        for _ in range(10):
            bits = rng.bits(12)
            gadget = lb.parallel_path_gadget(12)
            keys = lb.exact_gadget_path(
                gadget, lb.path_weights_from_bits(bits)
            )
            decoded = lb.decode_path_bits(12, keys)
            assert decoded == bits

    def test_decoder_rejects_partial_path(self):
        with pytest.raises(GraphError):
            lb.decode_path_bits(3, [("e", 1, 0)])

    def test_private_mechanism_resists_reconstruction(self, rng):
        """Lemma 5.4: at small eps the DP release errs on ~half the
        bits.  The bound (1-delta)/(1+e^eps) applies per bit."""
        n, eps = 60, 0.1
        trials = 30
        fractions = []
        for _ in range(trials):
            bits = rng.bits(n)
            gadget = lb.parallel_path_gadget(n)
            keys, params = lb.private_gadget_path(
                gadget,
                lb.path_weights_from_bits(bits),
                eps=eps,
                gamma=0.1,
                rng=rng.spawn(),
            )
            assert params.is_pure
            decoded = lb.decode_path_bits(n, keys)
            fractions.append(lb.hamming_distance(bits, decoded) / n)
        # Lemma 5.4 for the induced (2 eps, 0)-DP pipeline:
        per_bit_floor = bounds.row_recovery_bound(2 * eps, 0.0)
        assert np.mean(fractions) >= per_bit_floor * 0.9

    def test_private_mechanism_accuracy_cost(self, rng):
        """Theorem 5.1's flip side: the DP path's error is ~alpha ~
        0.49 n at small eps (each wrong bit costs 1)."""
        n, eps = 80, 0.05
        errors = []
        for _ in range(20):
            bits = rng.bits(n)
            gadget = lb.parallel_path_gadget(n)
            weights = lb.path_weights_from_bits(bits)
            keys, _ = lb.private_gadget_path(
                gadget, weights, eps=eps, gamma=0.1, rng=rng.spawn()
            )
            concrete = gadget.with_weights(weights)
            errors.append(concrete.path_weight(keys))  # optimum is 0
        alpha = bounds.reconstruction_lower_bound(n + 1, eps, 0.0)
        # Average error should be near n/2, certainly above ~0.9 alpha.
        assert np.mean(errors) >= 0.9 * alpha


class TestStarGadget:
    def test_figure3_left_shape(self):
        gadget = lb.star_gadget(4)
        assert gadget.num_vertices == 5
        assert gadget.num_edges == 8
        for i in range(1, 5):
            assert set(gadget.parallel_keys(0, i)) == {
                ("e", i, 0),
                ("e", i, 1),
            }

    def test_exact_mst_reconstructs(self, rng):
        for _ in range(10):
            bits = rng.bits(10)
            gadget = lb.star_gadget(10)
            tree = lb.exact_gadget_mst(
                gadget, lb.star_weights_from_bits(bits)
            )
            assert lb.decode_star_bits(10, tree) == bits

    def test_mst_weight_zero_on_encoded_instance(self, rng):
        bits = rng.bits(6)
        gadget = lb.star_gadget(6)
        weights = lb.star_weights_from_bits(bits)
        tree = lb.exact_gadget_mst(gadget, weights)
        concrete = gadget.with_weights(weights)
        assert concrete.path_weight(tree) == 0.0  # sum of tree weights

    def test_private_mst_resists_reconstruction(self, rng):
        n, eps = 60, 0.1
        fractions = []
        for _ in range(30):
            bits = rng.bits(n)
            gadget = lb.star_gadget(n)
            tree, _ = lb.private_gadget_mst(
                gadget,
                lb.star_weights_from_bits(bits),
                eps=eps,
                rng=rng.spawn(),
            )
            decoded = lb.decode_star_bits(n, tree)
            fractions.append(lb.hamming_distance(bits, decoded) / n)
        per_bit_floor = bounds.row_recovery_bound(2 * eps, 0.0)
        assert np.mean(fractions) >= per_bit_floor * 0.9


class TestHourglassGadget:
    def test_figure3_right_shape(self):
        gadget = lb.hourglass_gadget(3)
        assert gadget.num_vertices == 12
        assert gadget.num_edges == 12
        # each gadget is K_{2,2}
        assert gadget.has_edge((0, 0, 1), (1, 1, 1))
        assert not gadget.has_edge((0, 0, 0), (0, 1, 0))
        assert not gadget.has_edge((0, 0, 0), (1, 0, 1))

    def test_encoding_weights(self):
        weights = lb.hourglass_weights_from_bits([1])
        assert weights[((0, 1, 0), (1, 0, 0))] == 1.0
        assert weights[((0, 1, 0), (1, 1, 0))] == 0.0
        assert weights[((0, 0, 0), (1, 0, 0))] == 0.0

    def test_exact_matching_reconstructs(self, rng):
        for _ in range(10):
            bits = rng.bits(8)
            gadget = lb.hourglass_gadget(8)
            matching = lb.exact_gadget_matching(
                gadget, lb.hourglass_weights_from_bits(bits)
            )
            assert lb.decode_matching_bits(8, matching) == bits

    def test_optimal_matching_weight_zero(self, rng):
        bits = rng.bits(5)
        gadget = lb.hourglass_gadget(5)
        weights = lb.hourglass_weights_from_bits(bits)
        matching = lb.exact_gadget_matching(gadget, weights)
        concrete = gadget.with_weights(weights)
        total = sum(concrete.weight(u, v) for u, v in matching)
        assert total == 0.0

    def test_private_matching_resists_reconstruction(self, rng):
        n, eps = 40, 0.1
        fractions = []
        for _ in range(30):
            bits = rng.bits(n)
            gadget = lb.hourglass_gadget(n)
            matching, _ = lb.private_gadget_matching(
                gadget,
                lb.hourglass_weights_from_bits(bits),
                eps=eps,
                rng=rng.spawn(),
            )
            decoded = lb.decode_matching_bits(n, matching)
            fractions.append(lb.hamming_distance(bits, decoded) / n)
        per_bit_floor = bounds.row_recovery_bound(2 * eps, 0.0)
        assert np.mean(fractions) >= per_bit_floor * 0.9

    def test_decoder_rejects_incomplete(self):
        with pytest.raises(GraphError):
            lb.decode_matching_bits(2, [((0, 1, 0), (1, 0, 0))])


class TestAttackTrial:
    def test_pipeline_with_exact_solver(self, rng):
        bits = rng.bits(10)

        def release(x):
            gadget = lb.parallel_path_gadget(len(x))
            keys = lb.exact_gadget_path(
                gadget, lb.path_weights_from_bits(x)
            )
            return lb.decode_path_bits(len(x), keys)

        distance, fraction = lb.attack_trial(bits, release)
        assert distance == 0
        assert fraction == 0.0

    def test_pipeline_with_constant_guesser(self, rng):
        bits = [1] * 10
        distance, fraction = lb.attack_trial(bits, lambda x: [0] * len(x))
        assert distance == 10
        assert fraction == 1.0
