"""Unit tests for :mod:`repro.core.distance_oracle`."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AllPairsAdvancedRelease,
    AllPairsBasicRelease,
    DisconnectedGraphError,
    Rng,
    VertexNotFoundError,
    WeightedGraph,
    private_distance,
)
from repro.dp import bounds
from repro.graphs import generators


class TestPrivateDistance:
    def test_unbiased(self, triangle):
        rng = Rng(0)
        releases = [
            private_distance(triangle, 0, 2, eps=1.0, rng=rng)
            for _ in range(20_000)
        ]
        assert float(np.mean(releases)) == pytest.approx(3.0, abs=0.05)

    def test_error_concentration(self, triangle):
        """Error magnitude obeys the (1/eps) log(1/gamma) quantile."""
        rng = Rng(1)
        eps, gamma = 2.0, 0.05
        bound = bounds.single_pair_distance_error(eps, gamma)
        errors = [
            abs(private_distance(triangle, 0, 2, eps=eps, rng=rng) - 3.0)
            for _ in range(5000
            )
        ]
        violations = sum(1 for e in errors if e > bound)
        assert violations / len(errors) <= gamma * 1.5

    def test_disconnected_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            private_distance(g, 0, 3, eps=1.0, rng=Rng(0))

    def test_backend_registry_seeded_equivalence(self, rng):
        """The query routes through the engine backend registry: all
        backends compute bit-identical exact distances, so with the
        same seed every backend releases the identical float."""
        graph = generators.assign_random_weights(
            generators.grid_graph(6, 6), rng, low=0.5, high=2.0
        )
        released = {
            backend: private_distance(
                graph, (0, 0), (5, 5), eps=1.0, rng=Rng(77),
                backend=backend,
            )
            for backend in ("python", "numpy", "auto", None)
        }
        assert len(set(released.values())) == 1

    def test_unknown_backend_rejected(self, triangle):
        from repro.exceptions import EngineError

        with pytest.raises(EngineError):
            private_distance(
                triangle, 0, 2, eps=1.0, rng=Rng(0), backend="quantum"
            )


class TestAllPairsBasic:
    def test_released_distances_present_for_all_pairs(self, grid5):
        release = AllPairsBasicRelease(grid5, eps=1.0, rng=Rng(0))
        assert len(release.all_released()) == 25 * 24 // 2
        assert release.distance((0, 0), (4, 4)) == release.distance(
            (4, 4), (0, 0)
        )

    def test_self_distance_zero(self, grid5):
        release = AllPairsBasicRelease(grid5, eps=1.0, rng=Rng(0))
        assert release.distance((1, 1), (1, 1)) == 0.0

    def test_noise_scale_is_pairs_over_eps(self, grid5):
        release = AllPairsBasicRelease(grid5, eps=2.0, rng=Rng(0))
        assert release.noise_scale == (300) / 2.0

    def test_params(self, grid5):
        release = AllPairsBasicRelease(grid5, eps=0.5, rng=Rng(0))
        assert release.params.eps == 0.5
        assert release.params.is_pure

    def test_missing_vertex(self, grid5):
        release = AllPairsBasicRelease(grid5, eps=1.0, rng=Rng(0))
        with pytest.raises(VertexNotFoundError):
            release.distance((0, 0), (9, 9))

    def test_disconnected_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            AllPairsBasicRelease(g, eps=1.0, rng=Rng(0))

    def test_exact_distance_accessor(self, triangle):
        release = AllPairsBasicRelease(triangle, eps=1.0, rng=Rng(0))
        assert release.exact_distance(0, 2) == 3.0


class TestAllPairsAdvanced:
    def test_noise_scale_beats_basic(self, grid5):
        """The point of the (eps, delta) baseline: ~V noise instead of
        ~V^2."""
        basic = AllPairsBasicRelease(grid5, eps=1.0, rng=Rng(0))
        advanced = AllPairsAdvancedRelease(
            grid5, eps=1.0, delta=1e-6, rng=Rng(0)
        )
        assert advanced.noise_scale < basic.noise_scale

    def test_noise_scale_near_paper_form(self, grid5):
        """Scale is within a small factor of V sqrt(2 ln 1/delta)/eps."""
        eps, delta = 1.0, 1e-6
        release = AllPairsAdvancedRelease(
            grid5, eps=eps, delta=delta, rng=Rng(0)
        )
        paper = bounds.all_pairs_advanced_noise_scale(25, eps, delta)
        assert release.noise_scale == pytest.approx(paper, rel=0.5)

    def test_params_include_delta(self, grid5):
        release = AllPairsAdvancedRelease(
            grid5, eps=1.0, delta=1e-6, rng=Rng(0)
        )
        assert release.params.delta == 1e-6

    def test_errors_centered(self, triangle):
        rng = Rng(3)
        errors = []
        for _ in range(300):
            release = AllPairsAdvancedRelease(
                triangle, eps=1.0, delta=1e-4, rng=rng
            )
            errors.append(release.distance(0, 2) - 3.0)
        assert float(np.mean(errors)) == pytest.approx(0.0, abs=1.5)


class TestAccuracyOrdering:
    def test_advanced_more_accurate_on_average(self, rng):
        """Measured error of the advanced release is lower than basic on
        a moderate graph, as the noise-scale comparison predicts."""
        g = generators.erdos_renyi_graph(20, 0.2, rng)
        g = generators.assign_random_weights(g, rng, 1.0, 5.0)
        basic = AllPairsBasicRelease(g, eps=1.0, rng=rng)
        advanced = AllPairsAdvancedRelease(g, eps=1.0, delta=1e-6, rng=rng)
        pairs = [(0, i) for i in range(1, 20)]
        basic_err = np.mean(
            [abs(basic.distance(s, t) - basic.exact_distance(s, t)) for s, t in pairs]
        )
        advanced_err = np.mean(
            [
                abs(advanced.distance(s, t) - advanced.exact_distance(s, t))
                for s, t in pairs
            ]
        )
        assert advanced_err < basic_err
