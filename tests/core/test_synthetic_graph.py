"""Unit tests for :mod:`repro.core.synthetic_graph`."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Rng, WeightError, WeightedGraph, release_synthetic_graph
from repro.dp import bounds
from repro.graphs import generators


class TestRelease:
    def test_topology_preserved(self, grid5):
        release = release_synthetic_graph(grid5, eps=1.0, rng=Rng(0))
        assert release.graph.num_edges == grid5.num_edges
        assert release.graph.edge_list() == grid5.edge_list()

    def test_weights_are_noised(self, grid5):
        release = release_synthetic_graph(grid5, eps=1.0, rng=Rng(0))
        original = grid5.weight_vector()
        noisy = release.graph.weight_vector()
        assert not np.allclose(original, noisy)

    def test_clamp_at_zero_default(self, grid5):
        release = release_synthetic_graph(grid5, eps=0.2, rng=Rng(0))
        assert (release.graph.weight_vector() >= 0).all()

    def test_no_clamp_option(self, grid5):
        release = release_synthetic_graph(
            grid5, eps=0.2, rng=Rng(0), clamp_at_zero=False
        )
        assert (release.graph.weight_vector() < 0).any()

    def test_negative_input_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, -1.0)])
        with pytest.raises(WeightError):
            release_synthetic_graph(g, eps=1.0, rng=Rng(0))

    def test_params(self, grid5):
        release = release_synthetic_graph(grid5, eps=0.7, rng=Rng(0))
        assert release.params.eps == 0.7
        assert release.params.is_pure

    def test_scaling_unit_reduces_noise(self, grid5):
        """Section 1.2 Scaling: unit 1/V shrinks the noise by 1/V."""
        wide = release_synthetic_graph(
            grid5, eps=1.0, rng=Rng(0), clamp_at_zero=False
        )
        narrow = release_synthetic_graph(
            grid5,
            eps=1.0,
            rng=Rng(0),
            clamp_at_zero=False,
            sensitivity_unit=1.0 / grid5.num_vertices,
        )
        wide_dev = np.abs(
            wide.graph.weight_vector() - grid5.weight_vector()
        ).mean()
        narrow_dev = np.abs(
            narrow.graph.weight_vector() - grid5.weight_vector()
        ).mean()
        assert narrow_dev == pytest.approx(
            wide_dev / grid5.num_vertices, rel=1e-9
        )


class TestQueries:
    def test_distance_close_to_truth(self, grid5):
        release = release_synthetic_graph(grid5, eps=5.0, rng=Rng(0))
        est = release.distance((0, 0), (4, 4))
        assert est == pytest.approx(8.0, abs=5.0)

    def test_shortest_path_valid_in_topology(self, grid5):
        release = release_synthetic_graph(grid5, eps=1.0, rng=Rng(0))
        path, _ = release.shortest_path((0, 0), (4, 4))
        assert grid5.is_path(path)
        assert path[0] == (0, 0) and path[-1] == (4, 4)

    def test_all_pairs_distances_shape(self, triangle):
        release = release_synthetic_graph(triangle, eps=1.0, rng=Rng(0))
        distances = release.all_pairs_distances()
        assert set(distances) == {0, 1, 2}
        assert len(distances[0]) == 3


class TestErrorBound:
    def test_section4_baseline_bound_holds(self, rng):
        """Every pairwise distance error stays within the paper's
        (V/eps) log(E/gamma) bound, with margin, across trials."""
        eps, gamma = 1.0, 0.05
        g = generators.erdos_renyi_graph(25, 0.15, rng)
        g = generators.assign_random_weights(g, rng, 0.5, 3.0)
        bound = bounds.synthetic_graph_distance_error(
            g.num_vertices, g.num_edges, eps, gamma
        )
        from repro.algorithms import all_pairs_dijkstra

        exact = all_pairs_dijkstra(g)
        violations = 0
        trials = 20
        for _ in range(trials):
            release = release_synthetic_graph(g, eps=eps, rng=rng)
            noisy = release.all_pairs_distances()
            worst = max(
                abs(noisy[s][t] - exact[s][t])
                for s in exact
                for t in exact[s]
            )
            if worst > bound:
                violations += 1
        assert violations / trials <= gamma * 2
