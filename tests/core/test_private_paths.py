"""Unit tests for :mod:`repro.core.private_paths` (Algorithm 3,
Theorem 5.5, Corollary 5.6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import PrivacyError, Rng, WeightedGraph, release_private_paths
from repro.analysis import path_error
from repro.dp import bounds
from repro.graphs import generators


class TestReleaseMechanics:
    def test_offset_formula(self, grid5):
        eps, gamma = 2.0, 0.1
        release = release_private_paths(grid5, eps, gamma, Rng(0))
        assert release.offset == pytest.approx(
            (1 / eps) * math.log(grid5.num_edges / gamma)
        )

    def test_no_bias_option(self, grid5):
        release = release_private_paths(
            grid5, 1.0, 0.1, Rng(0), hop_bias=False
        )
        assert release.offset == 0.0

    def test_released_weights_biased_upward(self, grid5):
        release = release_private_paths(grid5, 1.0, 0.05, Rng(0))
        true = grid5.weight_vector()
        noisy = release.graph.weight_vector()
        # The offset dominates the noise on average.
        assert noisy.mean() > true.mean()

    def test_invalid_gamma(self, grid5):
        with pytest.raises(PrivacyError):
            release_private_paths(grid5, 1.0, 0.0, Rng(0))
        with pytest.raises(PrivacyError):
            release_private_paths(grid5, 1.0, 1.0, Rng(0))

    def test_params(self, grid5):
        release = release_private_paths(grid5, 0.3, 0.1, Rng(0))
        assert release.params.eps == 0.3
        assert release.params.is_pure

    def test_nonnegative_weights_always(self, grid5):
        release = release_private_paths(grid5, 0.1, 0.5, Rng(0))
        assert (release.graph.weight_vector() >= 0).all()


class TestPathQueries:
    def test_path_valid_and_connects(self, grid5):
        release = release_private_paths(grid5, 1.0, 0.05, Rng(0))
        path = release.path((0, 0), (4, 4))
        assert grid5.is_path(path)
        assert path[0] == (0, 0) and path[-1] == (4, 4)

    def test_paths_from_source_cover_all(self, grid5):
        release = release_private_paths(grid5, 1.0, 0.05, Rng(0))
        paths = release.paths_from((0, 0))
        assert set(paths) == set(grid5.vertices())
        for target, path in paths.items():
            assert path[-1] == target

    def test_all_pairs_paths(self, triangle):
        release = release_private_paths(triangle, 1.0, 0.05, Rng(0))
        all_paths = release.all_pairs_paths()
        assert set(all_paths) == {0, 1, 2}
        assert all_paths[0][2][0] == 0

    def test_path_with_released_weight(self, grid5):
        release = release_private_paths(grid5, 1.0, 0.05, Rng(0))
        path, released_weight = release.path_with_released_weight(
            (0, 0), (0, 4)
        )
        assert released_weight == pytest.approx(
            release.graph.path_weight(path)
        )


class TestTheorem55:
    def test_error_bound_holds_whp(self, rng):
        """For all pairs simultaneously, error <= (2 l(P') / eps)
        log(E/gamma) against every alternative path P'."""
        eps, gamma = 1.0, 0.05
        g = generators.erdos_renyi_graph(30, 0.12, rng)
        g = generators.assign_random_weights(g, rng, 0.0, 4.0)
        from repro.algorithms import dijkstra_path, path_hops

        bound_violations = 0
        trials = 20
        vertices = g.vertex_list()
        for _ in range(trials):
            release = release_private_paths(g, eps, gamma, rng.spawn())
            ok = True
            for t in vertices[1:]:
                released = release.path(0, t)
                true_path, true_dist = dijkstra_path(g, 0, t)
                k = path_hops(true_path)
                limit = bounds.shortest_path_error(k, g.num_edges, eps, gamma)
                if g.path_weight(released) > true_dist + limit + 1e-9:
                    ok = False
                    break
            if not ok:
                bound_violations += 1
        assert bound_violations / trials <= gamma * 2

    def test_corollary56_worst_case(self, rng):
        """All errors below the (2V/eps) log(E/gamma) corollary bound."""
        eps, gamma = 0.5, 0.05
        g = generators.grid_graph(6, 6)
        release = release_private_paths(g, eps, gamma, Rng(7))
        limit = bounds.shortest_path_error_worst_case(
            g.num_vertices, g.num_edges, eps, gamma
        )
        for t in [(5, 5), (0, 5), (3, 3)]:
            err = path_error(g, release.path((0, 0), t))
            assert err <= limit

    def test_hop_bias_prefers_short_paths(self):
        """A 2-hop heavy path vs a 20-hop path of slightly smaller
        weight: the bias makes the release prefer the 2-hop one."""
        g = WeightedGraph()
        # Long path: 20 hops of weight 1 (total 20).
        for i in range(20):
            g.add_edge(i, i + 1, 1.0)
        # Short path: 2 hops of total weight 20.5 (slightly worse).
        g.add_edge(0, "mid", 10.25)
        g.add_edge("mid", 20, 10.25)
        prefer_short = 0
        trials = 40
        rng = Rng(11)
        for _ in range(trials):
            release = release_private_paths(g, 1.0, 0.05, rng.spawn())
            if len(release.path(0, 20)) == 3:
                prefer_short += 1
        assert prefer_short / trials > 0.9

    def test_error_scales_with_hops_not_v(self, rng):
        """On a large sparse graph, near pairs get far smaller error
        than the Corollary 5.6 worst case — the paper's headline
        practical claim."""
        g = generators.grid_graph(12, 12)
        eps, gamma = 1.0, 0.05
        release = release_private_paths(g, eps, gamma, Rng(5))
        near_error = path_error(g, release.path((0, 0), (0, 2)))
        worst_case = bounds.shortest_path_error_worst_case(
            g.num_vertices, g.num_edges, eps, gamma
        )
        assert near_error < worst_case / 5

    def test_scaling_unit(self, grid5):
        """Section 1.2: with unit u the offset scales by u."""
        release = release_private_paths(
            grid5, 1.0, 0.1, Rng(0), sensitivity_unit=0.01
        )
        expected = 0.01 * math.log(grid5.num_edges / 0.1)
        assert release.offset == pytest.approx(expected)


class TestAblation:
    def test_bias_improves_low_hop_accuracy(self, rng):
        """Ablation: with the hop bias, released paths for near pairs
        have smaller true error than without it (on a graph with heavy
        long detours)."""
        g = generators.grid_graph(10, 10)
        gw = generators.assign_random_weights(g, rng, 5.0, 10.0)
        pairs = [((0, 0), (0, 3)), ((2, 2), (4, 2)), ((5, 5), (7, 7))]
        biased_errors, unbiased_errors = [], []
        for _ in range(15):
            biased = release_private_paths(gw, 0.5, 0.05, rng.spawn())
            unbiased = release_private_paths(
                gw, 0.5, 0.05, rng.spawn(), hop_bias=False
            )
            for s, t in pairs:
                biased_errors.append(path_error(gw, biased.path(s, t)))
                unbiased_errors.append(path_error(gw, unbiased.path(s, t)))
        assert np.mean(biased_errors) <= np.mean(unbiased_errors) * 1.1
