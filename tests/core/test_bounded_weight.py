"""Unit tests for :mod:`repro.core.bounded_weight` (Algorithm 2,
Theorems 4.3, 4.5, 4.6, 4.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DisconnectedGraphError,
    GraphError,
    PrivacyError,
    Rng,
    WeightError,
    WeightedGraph,
    release_bounded_weight,
    release_grid_bounded_weight,
)
from repro.algorithms import bfs_hop_distances, is_k_covering
from repro.dp import bounds
from repro.graphs import generators


@pytest.fixture
def bounded_graph(rng):
    g = generators.erdos_renyi_graph(40, 0.08, rng)
    return generators.assign_random_weights(g, rng, 0.0, 1.0)


class TestValidation:
    def test_weights_above_bound_rejected(self, rng):
        g = generators.grid_graph(3, 3)  # unit weights
        with pytest.raises(WeightError):
            release_bounded_weight(g, 0.5, eps=1.0, rng=rng)

    def test_disconnected_rejected(self, rng):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            release_bounded_weight(g, 1.0, eps=1.0, rng=rng)

    def test_nonpositive_bound_rejected(self, rng, grid5):
        with pytest.raises(PrivacyError):
            release_bounded_weight(grid5, 0.0, eps=1.0, rng=rng)

    def test_bad_covering_rejected(self, rng, grid5):
        with pytest.raises(GraphError):
            release_bounded_weight(
                grid5, 1.0, eps=1.0, rng=rng, k=1, covering=[(0, 0)]
            )


class TestCoveringMachinery:
    def test_default_k_matches_theorem43(self, bounded_graph, rng):
        v = bounded_graph.num_vertices
        approx = release_bounded_weight(
            bounded_graph, 1.0, eps=1.0, rng=rng, delta=1e-6
        )
        assert approx.k == min(
            bounds.bounded_weight_optimal_k_approx(v, 1.0, 1.0), v - 1
        )
        pure = release_bounded_weight(bounded_graph, 1.0, eps=1.0, rng=rng)
        assert pure.k == min(
            bounds.bounded_weight_optimal_k_pure(v, 1.0, 1.0), v - 1
        )

    def test_covering_is_valid(self, bounded_graph, rng):
        release = release_bounded_weight(
            bounded_graph, 1.0, eps=1.0, rng=rng, k=3
        )
        assert is_k_covering(bounded_graph, release.covering, 3)
        assert release.covering_size <= 40 // 4

    def test_assignment_within_k_hops(self, bounded_graph, rng):
        release = release_bounded_weight(
            bounded_graph, 1.0, eps=1.0, rng=rng, k=3
        )
        for v in bounded_graph.vertices():
            z = release.assigned_covering_vertex(v)
            hops = bfs_hop_distances(bounded_graph, v)
            assert hops[z] <= 3

    def test_explicit_covering_used(self, grid5, rng):
        covering = [(0, 0), (0, 4), (4, 0), (4, 4), (2, 2)]
        release = release_bounded_weight(
            grid5, 1.0, eps=1.0, rng=rng, k=4, covering=covering
        )
        assert set(release.covering) == set(covering)


class TestNoiseScales:
    def test_pure_scale_quadratic_in_z(self, grid5, rng):
        release = release_bounded_weight(grid5, 1.0, eps=2.0, rng=rng, k=2)
        z = release.covering_size
        assert release.noise_scale == pytest.approx(
            max(z * (z - 1) // 2, 1) / 2.0
        )

    def test_approx_scale_smaller_than_pure(self, bounded_graph, rng):
        """Advanced composition beats basic once the number of queries
        exceeds ~2 ln(1/delta): pure scale is Q, approx is
        ~sqrt(2 Q ln(1/delta))."""
        pure = release_bounded_weight(
            bounded_graph, 1.0, eps=1.0, rng=rng, k=1
        )
        approx = release_bounded_weight(
            bounded_graph, 1.0, eps=1.0, rng=rng, k=1, delta=1e-6
        )
        z = approx.covering_size
        num_queries = z * (z - 1) // 2
        assert num_queries > 60  # k=1 on a sparse 40-vertex graph
        assert approx.noise_scale < pure.noise_scale

    def test_params(self, bounded_graph, rng):
        release = release_bounded_weight(
            bounded_graph, 1.0, eps=0.7, rng=rng, delta=1e-5
        )
        assert release.params.eps == 0.7
        assert release.params.delta == 1e-5


class TestQueries:
    def test_distance_is_assigned_pair_release(self, bounded_graph, rng):
        release = release_bounded_weight(
            bounded_graph, 1.0, eps=1.0, rng=rng, k=2
        )
        u, v = 0, 30
        zu = release.assigned_covering_vertex(u)
        zv = release.assigned_covering_vertex(v)
        assert release.distance(u, v) == release.covering_distance(zu, zv)

    def test_same_assignment_gives_zero(self, grid5, rng):
        release = release_bounded_weight(
            grid5, 1.0, eps=1.0, rng=rng, k=4, covering=[(2, 2)]
        )
        # Single covering vertex: every query collapses to 0.
        assert release.distance((0, 0), (4, 4)) == 0.0

    def test_covering_distance_unknown_pair(self, grid5, rng):
        release = release_bounded_weight(
            grid5, 1.0, eps=1.0, rng=rng, k=4, covering=[(2, 2)]
        )
        with pytest.raises(GraphError):
            release.covering_distance((0, 0), (2, 2))

    def test_all_released_count(self, grid5, rng):
        covering = [(0, 0), (0, 4), (4, 0), (4, 4), (2, 2)]
        release = release_bounded_weight(
            grid5, 1.0, eps=1.0, rng=rng, k=4, covering=covering
        )
        assert len(release.all_released()) == 10  # C(5, 2)


class TestAccuracy:
    def test_theorem45_error_bound_whp(self, rng):
        """Max query error below the Theorem 4.5 bound, most trials."""
        eps, delta, gamma = 1.0, 1e-6, 0.05
        g = generators.erdos_renyi_graph(36, 0.1, rng)
        g = generators.assign_random_weights(g, rng, 0.0, 1.0)
        from repro.algorithms import all_pairs_dijkstra

        exact = all_pairs_dijkstra(g)
        violations = 0
        trials = 10
        for _ in range(trials):
            release = release_bounded_weight(
                g, 1.0, eps=eps, rng=rng.spawn(), delta=delta, k=3
            )
            limit = bounds.bounded_weight_error_approx(
                k=3,
                covering_size=release.covering_size,
                weight_bound=1.0,
                eps=eps,
                delta=delta,
                gamma=gamma,
            )
            worst = max(
                abs(release.distance(s, t) - exact[s][t])
                for s in exact
                for t in exact[s]
            )
            if worst > limit:
                violations += 1
        assert violations / trials <= 0.2

    def test_beats_baseline_for_small_m(self, rng):
        """With small M the bounded-weight release beats the V/eps
        synthetic baseline on max error — the crossover the paper
        promises."""
        from repro import release_synthetic_graph
        from repro.algorithms import all_pairs_dijkstra

        eps = 0.5
        m = 0.1
        g = generators.erdos_renyi_graph(60, 0.08, rng)
        g = generators.assign_random_weights(g, rng, 0.0, m)
        exact = all_pairs_dijkstra(g)
        pairs = [(0, t) for t in range(1, 60)]

        def max_err(estimate):
            return max(abs(estimate(s, t) - exact[s][t]) for s, t in pairs)

        bw_errors, base_errors = [], []
        for _ in range(5):
            bw = release_bounded_weight(
                g, m, eps=eps, rng=rng.spawn(), delta=1e-6
            )
            base = release_synthetic_graph(g, eps=eps, rng=rng.spawn())
            base_distances = base.all_pairs_distances()
            bw_errors.append(max_err(bw.distance))
            base_errors.append(
                max_err(lambda s, t: base_distances[s][t])
            )
        assert np.mean(bw_errors) < np.mean(base_errors)


class TestGrid:
    def test_grid_release_construction(self, rng):
        side = 9
        g = generators.grid_graph(side, side)
        g = generators.assign_random_weights(g, rng, 0.0, 1.0)
        release = release_grid_bounded_weight(
            g, side, side, 1.0, eps=1.0, rng=rng, delta=1e-6
        )
        spacing = max(1, round((side * side) ** (1 / 3)))
        assert release.k == 2 * spacing
        assert release.covering_size <= (side // spacing + 1) ** 2

    def test_grid_release_answers(self, rng):
        side = 8
        g = generators.grid_graph(side, side)
        g = generators.assign_random_weights(g, rng, 0.0, 0.5)
        release = release_grid_bounded_weight(
            g, side, side, 0.5, eps=1.0, rng=rng, delta=1e-6
        )
        value = release.distance((0, 0), (7, 7))
        assert np.isfinite(value)

    def test_wrong_dimensions_rejected(self, grid5, rng):
        with pytest.raises(GraphError):
            release_grid_bounded_weight(
                grid5, 6, 6, 1.0, eps=1.0, rng=rng
            )

    def test_non_grid_topology_rejected(self, rng):
        g = generators.erdos_renyi_graph(25, 0.05, rng)
        with pytest.raises(GraphError):
            release_grid_bounded_weight(g, 5, 5, 1.0, eps=1.0, rng=rng)
