"""Unit tests for :mod:`repro.core.path_hierarchy` (Appendix A,
Theorem A.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    GraphError,
    Rng,
    VertexNotFoundError,
    WeightedGraph,
    release_path_hierarchy,
)
from repro.core.path_hierarchy import linearize_path
from repro.dp import bounds
from repro.graphs import generators


class TestLinearize:
    def test_orders_path(self):
        g = generators.path_graph(6)
        order = linearize_path(g)
        assert order == list(range(6)) or order == list(range(5, -1, -1))

    def test_scrambled_labels(self):
        g = WeightedGraph.from_edges(
            [("c", "a", 1.0), ("a", "t", 1.0), ("t", "s", 1.0)]
        )
        order = linearize_path(g)
        assert order in (["c", "a", "t", "s"], ["s", "t", "a", "c"])

    def test_single_vertex(self):
        g = WeightedGraph()
        g.add_vertex("x")
        assert linearize_path(g) == ["x"]

    def test_rejects_cycle(self):
        with pytest.raises(GraphError):
            linearize_path(generators.cycle_graph(4))

    def test_rejects_star(self):
        with pytest.raises(GraphError):
            linearize_path(generators.star_graph(4))

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            linearize_path(WeightedGraph())


class TestStructure:
    def test_levels_logarithmic(self):
        for n in (2, 17, 64, 257):
            g = generators.path_graph(n)
            release = release_path_hierarchy(g, eps=1.0, rng=Rng(0))
            assert release.num_levels <= math.log2(n - 1) + 2

    def test_segments_fewer_than_2e(self):
        g = generators.path_graph(100)
        release = release_path_hierarchy(g, eps=1.0, rng=Rng(0))
        assert release.num_segments < 2 * 99

    def test_noise_scale(self):
        g = generators.path_graph(64)
        release = release_path_hierarchy(g, eps=0.5, rng=Rng(0))
        assert release.noise_scale == pytest.approx(release.num_levels / 0.5)

    def test_max_terms(self):
        g = generators.path_graph(64)
        release = release_path_hierarchy(g, eps=1.0, rng=Rng(0))
        assert release.max_terms_per_distance() == 2 * release.num_levels

    def test_prefix_terms_bounded(self):
        g = generators.path_graph(130)
        release = release_path_hierarchy(g, eps=1.0, rng=Rng(0))
        for position in range(130):
            _, terms = release.prefix_estimate(position)
            assert terms <= release.num_levels

    def test_prefix_out_of_range(self):
        g = generators.path_graph(10)
        release = release_path_hierarchy(g, eps=1.0, rng=Rng(0))
        with pytest.raises(GraphError):
            release.prefix_estimate(10)

    def test_negative_weights_rejected(self):
        g = generators.path_graph(5)
        g.set_weight(0, 1, -1.0)
        from repro import WeightError

        with pytest.raises(WeightError):
            release_path_hierarchy(g, eps=1.0, rng=Rng(0))


class TestAccuracy:
    def test_unbiased(self, path10):
        rng = Rng(0)
        true = sum(range(1, 10))  # d(0, 9) = 1+2+...+9 = 45
        estimates = [
            release_path_hierarchy(path10, eps=1.0, rng=rng).distance(0, 9)
            for _ in range(2000)
        ]
        assert float(np.mean(estimates)) == pytest.approx(true, abs=1.0)

    def test_symmetry_and_self(self, path10):
        release = release_path_hierarchy(path10, eps=1.0, rng=Rng(0))
        assert release.distance(2, 7) == release.distance(7, 2)
        assert release.distance(4, 4) == 0.0

    def test_missing_vertex(self, path10):
        release = release_path_hierarchy(path10, eps=1.0, rng=Rng(0))
        with pytest.raises(VertexNotFoundError):
            release.distance(0, 99)

    def test_adjacent_distance_consistency(self, path10):
        """d(0, i+1) - d(0, i) recovers an estimate of w(i, i+1) whose
        error is bounded — internal consistency of the hierarchy."""
        release = release_path_hierarchy(path10, eps=2.0, rng=Rng(1))
        for i in range(9):
            diff = release.distance(0, i + 1) - release.distance(0, i)
            assert abs(diff - (i + 1)) < 40

    def test_theorem_a1_bound_whp(self, rng):
        """Per-distance error below the O(log^1.5 V log(1/gamma))/eps
        bound, reusing the tree bound (the paper says they match)."""
        eps, gamma = 1.0, 0.05
        n = 128
        g = generators.path_graph(n)
        g = generators.assign_random_weights(g, rng, 0.0, 10.0)
        from repro.algorithms import dijkstra_path

        _, true = dijkstra_path(g, 10, 100)
        bound = bounds.tree_single_source_error(n, eps, gamma)
        violations = 0
        trials = 200
        for _ in range(trials):
            release = release_path_hierarchy(g, eps=eps, rng=rng.spawn())
            if abs(release.distance(10, 100) - true) > bound:
                violations += 1
        assert violations / trials <= gamma * 2

    def test_beats_naive_baseline(self, rng):
        """Max all-pairs error far below the V/eps synthetic-graph
        baseline on a long path."""
        n, eps = 256, 1.0
        g = generators.path_graph(n)
        release = release_path_hierarchy(g, eps=eps, rng=rng)
        worst = 0.0
        for t in range(0, n, 17):
            worst = max(worst, abs(release.distance(0, t) - t))
        assert worst < n / eps
