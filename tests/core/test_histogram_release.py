"""Unit tests for :mod:`repro.core.histogram_release` (Section 1.3 at
toy scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DisconnectedGraphError,
    GraphError,
    Rng,
    WeightedGraph,
)
from repro.core.histogram_release import release_histogram_distances
from repro.graphs import generators


@pytest.fixture
def tiny_graph():
    """A 4-cycle with weights on a 0.5-grid in [0, 1]."""
    g = generators.cycle_graph(4)
    g.set_weight(0, 1, 0.5)
    g.set_weight(1, 2, 1.0)
    g.set_weight(2, 3, 0.0)
    g.set_weight(3, 0, 0.5)
    return g


class TestValidation:
    def test_candidate_explosion_rejected(self):
        g = generators.grid_graph(4, 4)  # 24 edges
        with pytest.raises(GraphError):
            release_histogram_distances(
                g, 1.0, 0.5, eps=1.0, rng=Rng(0)
            )

    def test_disconnected_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            release_histogram_distances(g, 1.0, 0.5, eps=1.0, rng=Rng(0))

    def test_bad_resolution(self, tiny_graph):
        with pytest.raises(GraphError):
            release_histogram_distances(
                tiny_graph, 1.0, 0.0, eps=1.0, rng=Rng(0)
            )
        with pytest.raises(GraphError):
            release_histogram_distances(
                tiny_graph, 1.0, 2.0, eps=1.0, rng=Rng(0)
            )

    def test_overweight_rejected(self, tiny_graph):
        tiny_graph.set_weight(0, 1, 5.0)
        from repro import WeightError

        with pytest.raises(WeightError):
            release_histogram_distances(
                tiny_graph, 1.0, 0.5, eps=1.0, rng=Rng(0)
            )


class TestRelease:
    def test_candidate_count(self, tiny_graph):
        release = release_histogram_distances(
            tiny_graph, 1.0, 0.5, eps=1.0, rng=Rng(0)
        )
        # 3 levels (0, 0.5, 1.0) on 4 edges.
        assert release.num_candidates == 81
        assert release.params.eps == 1.0

    def test_released_weights_on_grid(self, tiny_graph):
        release = release_histogram_distances(
            tiny_graph, 1.0, 0.5, eps=1.0, rng=Rng(0)
        )
        for _, _, w in release.graph.edges():
            assert w in (0.0, 0.5, 1.0)

    def test_high_eps_recovers_exact_distances(self, tiny_graph):
        """With a huge budget the mechanism picks a zero-error grid
        point (the true weights are on the grid)."""
        from repro.algorithms import all_pairs_dijkstra

        exact = all_pairs_dijkstra(tiny_graph)
        release = release_histogram_distances(
            tiny_graph, 1.0, 0.5, eps=200.0, rng=Rng(1)
        )
        for s in exact:
            for t in exact[s]:
                assert release.distance(s, t) == pytest.approx(
                    exact[s][t], abs=1e-9
                )

    def test_error_decreases_with_eps(self, tiny_graph):
        from repro.algorithms import all_pairs_dijkstra

        exact = all_pairs_dijkstra(tiny_graph)
        pairs = [(0, 2), (1, 3), (0, 1)]

        def mean_error(eps: float) -> float:
            rng = Rng(2)
            errors = []
            for _ in range(30):
                release = release_histogram_distances(
                    tiny_graph, 1.0, 0.5, eps=eps, rng=rng.spawn()
                )
                errors.extend(
                    abs(release.distance(s, t) - exact[s][t])
                    for s, t in pairs
                )
            return float(np.mean(errors))

        assert mean_error(50.0) < mean_error(0.1)

    def test_post_processing_consistency(self, tiny_graph):
        """distance() answers equal Dijkstra on the released graph."""
        from repro.algorithms import dijkstra_path

        release = release_histogram_distances(
            tiny_graph, 1.0, 0.5, eps=1.0, rng=Rng(3)
        )
        _, d = dijkstra_path(release.graph, 0, 2)
        assert release.distance(0, 2) == pytest.approx(d)
