"""Unit tests for :mod:`repro.core.mst` (Theorem B.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Rng, WeightedGraph, release_private_mst
from repro.algorithms import kruskal_mst, spanning_tree_weight
from repro.dp import bounds
from repro.graphs import generators


class TestRelease:
    def test_is_spanning_tree(self, rng):
        g = generators.erdos_renyi_graph(25, 0.2, rng)
        g = generators.assign_random_weights(g, rng, 0.0, 5.0)
        release = release_private_mst(g, eps=1.0, rng=rng)
        edges = release.tree_edges
        assert len(edges) == 24
        # Spanning: union-find over released edges connects everything.
        from repro.algorithms import UnionFind

        uf = UnionFind(g.vertices())
        for u, v in edges:
            assert g.has_edge(u, v)
            uf.union(u, v)
        root = uf.find(0)
        assert all(uf.find(v) == root for v in g.vertices())

    def test_params(self, grid5):
        release = release_private_mst(grid5, eps=0.4, rng=Rng(0))
        assert release.params.eps == 0.4
        assert release.params.is_pure

    def test_noisy_graph_same_topology(self, grid5):
        release = release_private_mst(grid5, eps=1.0, rng=Rng(0))
        assert release.noisy_graph.edge_list() == grid5.edge_list()

    def test_negative_input_weights_allowed(self):
        """Appendix B explicitly allows negative weights."""
        g = WeightedGraph.from_edges(
            [(0, 1, -3.0), (1, 2, 2.0), (0, 2, -1.0)]
        )
        release = release_private_mst(g, eps=5.0, rng=Rng(0))
        assert len(release.tree_edges) == 2

    def test_true_weight_evaluation(self, triangle):
        release = release_private_mst(triangle, eps=100.0, rng=Rng(0))
        # At eps=100 noise is tiny; released tree = true MST (weight 3).
        assert release.true_weight(triangle) == pytest.approx(3.0, abs=0.5)


class TestTheoremB3:
    def test_error_bound_whp(self, rng):
        eps, gamma = 1.0, 0.05
        g = generators.erdos_renyi_graph(30, 0.25, rng)
        g = generators.assign_random_weights(g, rng, 0.0, 10.0)
        optimum = spanning_tree_weight(g, kruskal_mst(g))
        limit = bounds.mst_error(g.num_vertices, g.num_edges, eps, gamma)
        violations = 0
        trials = 40
        for _ in range(trials):
            release = release_private_mst(g, eps=eps, rng=rng.spawn())
            error = release.true_weight(g) - optimum
            assert error >= -1e-9  # released tree can never beat the MST
            if error > limit:
                violations += 1
        assert violations / trials <= gamma * 2

    def test_error_shrinks_with_eps(self, rng):
        g = generators.erdos_renyi_graph(25, 0.3, rng)
        g = generators.assign_random_weights(g, rng, 0.0, 10.0)
        optimum = spanning_tree_weight(g, kruskal_mst(g))

        def mean_error(eps: float) -> float:
            errs = []
            for _ in range(20):
                release = release_private_mst(g, eps=eps, rng=rng.spawn())
                errs.append(release.true_weight(g) - optimum)
            return float(np.mean(errs))

        assert mean_error(10.0) < mean_error(0.3)

    def test_scaling_unit(self, rng):
        """Sensitivity unit u scales the noise (Section 1.2)."""
        g = generators.erdos_renyi_graph(25, 0.3, rng)
        g = generators.assign_random_weights(g, rng, 0.0, 10.0)
        optimum = spanning_tree_weight(g, kruskal_mst(g))
        errs_unit = []
        errs_small = []
        for _ in range(20):
            errs_unit.append(
                release_private_mst(g, eps=1.0, rng=rng.spawn()).true_weight(g)
                - optimum
            )
            errs_small.append(
                release_private_mst(
                    g, eps=1.0, rng=rng.spawn(), sensitivity_unit=0.01
                ).true_weight(g)
                - optimum
            )
        assert np.mean(errs_small) < np.mean(errs_unit)
