"""Directed-graph coverage for the Section 5 mechanisms.

The paper notes (Section 2) that the shortest-path results also apply
to directed graphs; these tests exercise Algorithm 3 and the
synthetic-graph release on digraphs.
"""

from __future__ import annotations

import pytest

from repro import (
    DisconnectedGraphError,
    Rng,
    WeightedGraph,
    release_private_paths,
    release_synthetic_graph,
)
from repro.algorithms import dijkstra_path


@pytest.fixture
def one_way_grid():
    """A 4x4 grid with one-way streets: edges point right and down."""
    g = WeightedGraph(directed=True)
    for r in range(4):
        for c in range(4):
            if c + 1 < 4:
                g.add_edge((r, c), (r, c + 1), 1.0)
            if r + 1 < 4:
                g.add_edge((r, c), (r + 1, c), 1.0)
    return g


class TestDirectedPrivatePaths:
    def test_released_graph_is_directed(self, one_way_grid):
        release = release_private_paths(one_way_grid, 1.0, 0.1, Rng(0))
        assert release.graph.directed

    def test_path_respects_orientation(self, one_way_grid):
        release = release_private_paths(one_way_grid, 1.0, 0.1, Rng(0))
        path = release.path((0, 0), (3, 3))
        assert path[0] == (0, 0) and path[-1] == (3, 3)
        for u, v in zip(path, path[1:]):
            assert one_way_grid.has_edge(u, v)  # forward edges only
        # Monotone coordinates: right/down moves only.
        for (r1, c1), (r2, c2) in zip(path, path[1:]):
            assert (r2 >= r1) and (c2 >= c1)

    def test_unreachable_pair_raises(self, one_way_grid):
        release = release_private_paths(one_way_grid, 1.0, 0.1, Rng(0))
        with pytest.raises(DisconnectedGraphError):
            release.path((3, 3), (0, 0))  # against the one-way flow

    def test_error_bound_directed(self, one_way_grid):
        """Theorem 5.5 shape on a digraph: error within the hop bound."""
        from repro.dp import bounds

        eps, gamma = 1.0, 0.05
        violations = 0
        trials = 30
        rng = Rng(1)
        for _ in range(trials):
            release = release_private_paths(
                one_way_grid, eps, gamma, rng.spawn()
            )
            path = release.path((0, 0), (3, 3))
            true_path, true_dist = dijkstra_path(
                one_way_grid, (0, 0), (3, 3)
            )
            limit = bounds.shortest_path_error(
                len(true_path) - 1, one_way_grid.num_edges, eps, gamma
            )
            if one_way_grid.path_weight(path) > true_dist + limit:
                violations += 1
        assert violations / trials <= gamma * 2

    def test_all_pairs_paths_reachable_only(self, one_way_grid):
        release = release_private_paths(one_way_grid, 1.0, 0.1, Rng(2))
        paths = release.paths_from((1, 1))
        # Only the lower-right quadrant is reachable from (1, 1).
        assert set(paths) == {
            (r, c) for r in range(1, 4) for c in range(1, 4)
        }


class TestDirectedSyntheticGraph:
    def test_release_preserves_orientation(self, one_way_grid):
        release = release_synthetic_graph(one_way_grid, 1.0, Rng(0))
        assert release.graph.directed
        assert release.graph.has_edge((0, 0), (0, 1))
        assert not release.graph.has_edge((0, 1), (0, 0))

    def test_distance_query(self, one_way_grid):
        release = release_synthetic_graph(one_way_grid, 5.0, Rng(0))
        est = release.distance((0, 0), (3, 3))
        assert est == pytest.approx(6.0, abs=4.0)
