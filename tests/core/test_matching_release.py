"""Unit tests for :mod:`repro.core.matching` (Theorem B.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Rng, WeightedGraph, release_private_matching
from repro.algorithms import (
    hungarian_min_cost_perfect_matching,
    is_perfect_matching,
    matching_weight,
)
from repro.dp import bounds
from repro.graphs import generators


def random_bipartite(n: int, rng) -> WeightedGraph:
    """Complete bipartite K_{n,n} with random weights."""
    g = WeightedGraph()
    for i in range(n):
        for j in range(n):
            g.add_edge(("L", i), ("R", j), rng.uniform(0.0, 5.0))
    return g


class TestRelease:
    def test_released_matching_is_perfect(self, rng):
        g = random_bipartite(6, rng)
        release = release_private_matching(g, eps=1.0, rng=rng)
        assert is_perfect_matching(g, release.matching_edges)

    def test_engine_hungarian(self, rng):
        g = random_bipartite(5, rng)
        release = release_private_matching(
            g, eps=1.0, rng=rng, engine="hungarian"
        )
        assert is_perfect_matching(g, release.matching_edges)

    def test_engine_exact_general(self, rng):
        # 4-cycles are bipartite, but force the general engine.
        g = generators.cycle_graph(6)
        release = release_private_matching(g, eps=1.0, rng=rng, engine="exact")
        assert is_perfect_matching(g, release.matching_edges)

    def test_engine_auto_nonbipartite(self, rng):
        # K4 contains odd cycles -> auto must fall back to exact DP.
        g = generators.complete_graph(4)
        g = generators.assign_random_weights(g, rng, 0.0, 2.0)
        release = release_private_matching(g, eps=1.0, rng=rng)
        assert is_perfect_matching(g, release.matching_edges)

    def test_bad_engine(self, rng):
        g = random_bipartite(3, rng)
        with pytest.raises(ValueError):
            release_private_matching(g, eps=1.0, rng=rng, engine="bogus")

    def test_params(self, rng):
        g = random_bipartite(3, rng)
        release = release_private_matching(g, eps=0.9, rng=rng)
        assert release.params.eps == 0.9

    def test_negative_weights_allowed(self, rng):
        g = WeightedGraph.from_edges(
            [
                ("a", "b", -2.0),
                ("c", "d", -3.0),
            ]
        )
        release = release_private_matching(g, eps=5.0, rng=rng)
        assert is_perfect_matching(g, release.matching_edges)


class TestTheoremB6:
    def test_error_bound_whp(self, rng):
        eps, gamma = 1.0, 0.05
        g = random_bipartite(8, rng)
        optimum = matching_weight(g, hungarian_min_cost_perfect_matching(g))
        limit = bounds.matching_error(
            g.num_vertices, g.num_edges, eps, gamma
        )
        violations = 0
        trials = 40
        for _ in range(trials):
            release = release_private_matching(g, eps=eps, rng=rng.spawn())
            error = release.true_weight(g) - optimum
            assert error >= -1e-9
            if error > limit:
                violations += 1
        assert violations / trials <= gamma * 2

    def test_error_shrinks_with_eps(self, rng):
        g = random_bipartite(6, rng)
        optimum = matching_weight(g, hungarian_min_cost_perfect_matching(g))

        def mean_error(eps: float) -> float:
            return float(
                np.mean(
                    [
                        release_private_matching(
                            g, eps=eps, rng=rng.spawn()
                        ).true_weight(g)
                        - optimum
                        for _ in range(15)
                    ]
                )
            )

        assert mean_error(20.0) < mean_error(0.3)

    def test_hourglass_instance(self, rng):
        """The Figure 3 instance runs through the private release."""
        from repro.core.lower_bounds import (
            hourglass_gadget,
            hourglass_weights_from_bits,
        )

        bits = rng.bits(8)
        gadget = hourglass_gadget(8)
        concrete = gadget.with_weights(hourglass_weights_from_bits(bits))
        release = release_private_matching(concrete, eps=1.0, rng=rng)
        assert is_perfect_matching(concrete, release.matching_edges)
        # Optimal weight is 0; Theorem B.4 forces expected error ~n/2
        # at this eps, so the released weight is rarely 0 — but always
        # within the Theorem B.6 upper bound.
        limit = bounds.matching_error(
            concrete.num_vertices, concrete.num_edges, 1.0, 0.01
        )
        assert release.true_weight(concrete) <= limit
