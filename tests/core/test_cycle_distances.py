"""Unit tests for :mod:`repro.core.cycle_distances` (extension:
the paper's future-work ask for more graph classes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    GraphError,
    Rng,
    VertexNotFoundError,
    WeightedGraph,
    release_cycle_distances,
)
from repro.algorithms import dijkstra_path
from repro.core.cycle_distances import linearize_cycle
from repro.dp import bounds
from repro.graphs import generators


class TestLinearizeCycle:
    def test_orders_ring(self):
        g = generators.cycle_graph(6)
        order = linearize_cycle(g)
        assert len(order) == 6
        for a, b in zip(order, order[1:]):
            assert g.has_edge(a, b)
        assert g.has_edge(order[-1], order[0])

    def test_rejects_path(self):
        with pytest.raises(GraphError):
            linearize_cycle(generators.path_graph(5))

    def test_rejects_too_small(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(GraphError):
            linearize_cycle(g)

    def test_rejects_extra_chord(self):
        g = generators.cycle_graph(6)
        g.add_edge(0, 3, 1.0)
        with pytest.raises(GraphError):
            linearize_cycle(g)

    def test_rejects_two_triangles(self):
        """Two disjoint triangles: 6 vertices, 6 edges, all degree 2 —
        but not a single cycle."""
        g = WeightedGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),
             (3, 4, 1.0), (4, 5, 1.0), (5, 3, 1.0)]
        )
        with pytest.raises(GraphError):
            linearize_cycle(g)


class TestCycleRelease:
    def test_params_and_budget_split(self):
        g = generators.cycle_graph(8)
        release = release_cycle_distances(g, eps=1.0, rng=Rng(0))
        assert release.params.eps == 1.0
        assert release.params.is_pure
        assert release.hierarchy.params.eps == 0.5

    def test_self_distance_zero(self):
        g = generators.cycle_graph(8)
        release = release_cycle_distances(g, eps=1.0, rng=Rng(0))
        assert release.distance(3, 3) == 0.0

    def test_symmetry(self):
        g = generators.cycle_graph(10)
        release = release_cycle_distances(g, eps=1.0, rng=Rng(0))
        assert release.distance(2, 7) == release.distance(7, 2)

    def test_missing_vertex(self):
        g = generators.cycle_graph(5)
        release = release_cycle_distances(g, eps=1.0, rng=Rng(0))
        with pytest.raises(VertexNotFoundError):
            release.distance(0, 99)

    def test_noisy_total_near_truth(self):
        rng = Rng(1)
        g = generators.cycle_graph(12)
        totals = [
            release_cycle_distances(g, eps=1.0, rng=rng).noisy_total
            for _ in range(2000)
        ]
        assert float(np.mean(totals)) == pytest.approx(12.0, abs=0.2)

    def test_wraparound_pairs_use_short_arc(self):
        """Adjacent-around-the-break vertices must get the short arc,
        not the long one — the whole point of releasing the total."""
        rng = Rng(2)
        n = 64
        g = generators.cycle_graph(n)
        order = linearize_cycle(g)
        first, last = order[0], order[-1]
        # True distance is 1 (the break edge); the direct arc is n-1.
        estimates = [
            release_cycle_distances(g, eps=2.0, rng=rng.spawn()).distance(
                first, last
            )
            for _ in range(50)
        ]
        assert float(np.mean(estimates)) < n / 4  # uses the wrap arc

    def test_accuracy_polylog(self):
        """Per-distance error stays near the tree bound (the extension's
        claim), far below V/eps."""
        rng = Rng(3)
        n, eps = 128, 1.0
        g = generators.cycle_graph(n)
        g = generators.assign_random_weights(g, rng, 0.5, 4.0)
        errors = []
        pairs = [(0, 30), (5, 70), (10, 127), (40, 100)]
        # Map int labels through the release's own vertex handling.
        for _ in range(30):
            release = release_cycle_distances(g, eps=eps, rng=rng.spawn())
            for x, y in pairs:
                _, true = dijkstra_path(g, x, y)
                errors.append(abs(release.distance(x, y) - true))
        # Twice the tree bound at eps/2 budget, plus slack.
        limit = 2 * bounds.tree_single_source_error(n, eps / 2, 0.01)
        assert float(np.mean(errors)) < limit
        assert float(np.mean(errors)) < n / eps

    def test_negative_weights_rejected(self):
        g = generators.cycle_graph(5)
        g.set_weight(0, 1, -1.0)
        from repro import WeightError

        with pytest.raises(WeightError):
            release_cycle_distances(g, eps=1.0, rng=Rng(0))

    def test_min_underestimates_but_within_arc_error(self):
        """distance() <= both arc estimates, and equals one of them."""
        g = generators.cycle_graph(16)
        release = release_cycle_distances(g, eps=1.0, rng=Rng(4))
        direct, wrap = release.arc_estimates(2, 9)
        d = release.distance(2, 9)
        assert d == min(direct, wrap)
