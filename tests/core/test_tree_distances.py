"""Unit tests for :mod:`repro.core.tree_distances` (Algorithm 1,
Theorems 4.1 and 4.2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    NotATreeError,
    Rng,
    VertexNotFoundError,
    WeightedGraph,
    release_tree_all_pairs,
    release_tree_single_source,
)
from repro.dp import bounds
from repro.graphs import RootedTree, generators


class TestRecursionStructure:
    def test_depth_logarithmic(self, rng):
        """The recursion has O(log V) levels (paper: <= log V up to
        rounding; we allow a +2 slack for the ceil(V/2) pieces)."""
        for n in (2, 10, 64, 200, 500):
            tree = generators.random_tree(n, rng)
            release = release_tree_single_source(tree, eps=1.0, rng=rng)
            assert release.recursion_depth <= math.log2(n) + 2

    def test_num_queries_at_most_2v(self, rng):
        """Paper: the algorithm samples at most 2V Laplace variables."""
        for n in (5, 50, 200):
            tree = generators.random_tree(n, rng)
            release = release_tree_single_source(tree, eps=1.0, rng=rng)
            assert release.num_queries <= 2 * n

    def test_noise_terms_at_most_2_depth(self, rng):
        """Every estimate sums at most 2 noise terms per level."""
        tree = generators.random_tree(100, rng)
        release = release_tree_single_source(tree, eps=1.0, rng=rng)
        for v in tree.vertices():
            assert release.noise_terms(v) <= 2 * release.recursion_depth

    def test_noise_scale(self, rng):
        tree = generators.random_tree(64, rng)
        release = release_tree_single_source(tree, eps=0.5, rng=rng)
        assert release.noise_scale == pytest.approx(
            release.recursion_depth / 0.5
        )

    def test_single_vertex_tree(self):
        g = WeightedGraph()
        g.add_vertex("root")
        release = release_tree_single_source(g, eps=1.0, rng=Rng(0))
        assert release.distance_from_root("root") == 0.0
        assert release.num_queries == 0

    def test_two_vertex_tree(self):
        g = WeightedGraph.from_edges([("a", "b", 3.0)])
        release = release_tree_single_source(g, eps=1.0, rng=Rng(0), root="a")
        assert release.distance_from_root("a") == 0.0
        # b's estimate is 3.0 plus noise.
        assert release.distance_from_root("b") != 3.0

    def test_non_tree_rejected(self):
        g = generators.cycle_graph(5)
        with pytest.raises(NotATreeError):
            release_tree_single_source(g, eps=1.0, rng=Rng(0))

    def test_missing_vertex_query(self, rng):
        tree = generators.random_tree(10, rng)
        release = release_tree_single_source(tree, eps=1.0, rng=rng)
        with pytest.raises(VertexNotFoundError):
            release.distance_from_root(99)


class TestSingleSourceAccuracy:
    def test_unbiased_estimates(self):
        """Estimates are the truth plus zero-mean noise."""
        g = generators.path_graph(8)
        for i in range(7):
            g.set_weight(i, i + 1, 2.0)
        rng = Rng(0)
        estimates = []
        for _ in range(2000):
            release = release_tree_single_source(g, eps=1.0, rng=rng, root=0)
            estimates.append(release.distance_from_root(7))
        assert float(np.mean(estimates)) == pytest.approx(14.0, abs=0.5)

    def test_theorem41_bound_holds_whp(self, rng):
        """Max error across vertices stays below the Theorem 4.1 bound
        (with the union-bound gamma adjustment) in most trials."""
        eps, gamma = 1.0, 0.05
        n = 128
        tree = generators.random_tree(n, rng)
        tree = generators.assign_random_weights(tree, rng, 0.0, 10.0)
        rooted = RootedTree(tree, 0)
        # Per-vertex bound at gamma/n gives a simultaneous bound.
        bound = bounds.tree_single_source_error(n, eps, gamma / n)
        violations = 0
        trials = 20
        for _ in range(trials):
            release = release_tree_single_source(rooted, eps=eps, rng=rng)
            worst = max(
                abs(
                    release.distance_from_root(v)
                    - rooted.distance_from_root(v)
                )
                for v in tree.vertices()
            )
            if worst > bound:
                violations += 1
        assert violations / trials <= gamma * 2

    def test_much_better_than_naive_composition(self, rng):
        """Error is far below the naive all-queries baseline V/eps."""
        n, eps = 256, 1.0
        tree = generators.random_tree(n, rng)
        rooted = RootedTree(tree, 0)
        release = release_tree_single_source(rooted, eps=eps, rng=rng)
        worst = max(
            abs(release.distance_from_root(v) - rooted.distance_from_root(v))
            for v in tree.vertices()
        )
        assert worst < n / eps

    @pytest.mark.parametrize(
        "family",
        ["path", "star", "caterpillar", "balanced"],
    )
    def test_tree_families(self, rng, family):
        """Algorithm 1 handles structurally extreme trees."""
        if family == "path":
            tree = generators.path_graph(65)
        elif family == "star":
            tree = generators.star_graph(65)
        elif family == "caterpillar":
            tree = generators.caterpillar_tree(13, 4)
        else:
            tree = generators.balanced_tree(2, 5)
        tree = generators.assign_random_weights(tree, rng, 0.0, 5.0)
        rooted = RootedTree(tree, 0)
        release = release_tree_single_source(rooted, eps=2.0, rng=rng)
        n = tree.num_vertices
        bound = bounds.tree_single_source_error(n, 2.0, 0.01 / n)
        worst = max(
            abs(release.distance_from_root(v) - rooted.distance_from_root(v))
            for v in tree.vertices()
        )
        # Allow slack 2x for a single trial.
        assert worst <= 2 * bound


class TestAllPairs:
    def test_lca_identity_consistency(self, rng):
        """The all-pairs estimate equals the single-source combination."""
        tree = generators.random_tree(40, rng)
        rooted = RootedTree(tree, 0)
        release = release_tree_all_pairs(rooted, eps=1.0, rng=rng)
        single = release.single_source
        for x, y in [(3, 17), (5, 5), (0, 39)]:
            z = rooted.lca(x, y)
            expected = (
                single.distance_from_root(x)
                + single.distance_from_root(y)
                - 2 * single.distance_from_root(z)
            )
            assert release.distance(x, y) == pytest.approx(expected)

    def test_self_distance_exactly_zero(self, rng):
        tree = generators.random_tree(20, rng)
        release = release_tree_all_pairs(tree, eps=1.0, rng=rng)
        for v in (0, 7, 19):
            assert release.distance(v, v) == 0.0

    def test_symmetry(self, rng):
        tree = generators.random_tree(20, rng)
        release = release_tree_all_pairs(tree, eps=1.0, rng=rng)
        assert release.distance(3, 12) == release.distance(12, 3)

    def test_all_pairs_dict(self, rng):
        tree = generators.random_tree(10, rng)
        release = release_tree_all_pairs(tree, eps=1.0, rng=rng)
        table = release.all_pairs()
        assert len(table) == 45

    def test_theorem42_bound_holds_whp(self, rng):
        eps, gamma = 1.0, 0.05
        n = 64
        tree = generators.random_tree(n, rng)
        tree = generators.assign_random_weights(tree, rng, 0.0, 8.0)
        rooted = RootedTree(tree, 0)
        bound = bounds.tree_all_pairs_error(n, eps, gamma)
        violations = 0
        trials = 15
        vertices = list(tree.vertices())
        for _ in range(trials):
            release = release_tree_all_pairs(rooted, eps=eps, rng=rng)
            worst = max(
                abs(release.distance(x, y) - rooted.distance(x, y))
                for i, x in enumerate(vertices)
                for y in vertices[i + 1 :]
            )
            if worst > bound:
                violations += 1
        assert violations / trials <= gamma * 2
