"""Unit tests for :mod:`repro.dp.mechanisms` and Laplace sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LaplaceMechanism, PrivacyError, Rng
from repro.dp.mechanisms import laplace_noise_scale
from repro.rng import laplace_quantile, laplace_tail_bound


class TestNoiseScale:
    def test_scale_formula(self):
        assert laplace_noise_scale(2.0, 0.5) == 4.0

    @pytest.mark.parametrize("sens,eps", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
    def test_invalid(self, sens, eps):
        with pytest.raises(PrivacyError):
            laplace_noise_scale(sens, eps)


class TestLaplaceDistribution:
    def test_tail_bound_formula(self):
        """Definition 3.1: Pr[|Y| > t*b] = e^-t."""
        assert laplace_tail_bound(2.0, 0.0) == 1.0
        assert laplace_tail_bound(2.0, 1.0) == pytest.approx(np.exp(-1))

    def test_quantile_inverts_tail(self):
        b, gamma = 3.0, 0.05
        m = laplace_quantile(b, gamma)
        assert laplace_tail_bound(b, m / b) == pytest.approx(gamma)

    def test_empirical_tail(self):
        rng = Rng(0)
        b = 2.0
        samples = rng.laplace_vector(b, 200_000)
        # Pr[|Y| > b] should be about e^-1 ~ 0.368
        frac = float(np.mean(np.abs(samples) > b))
        assert frac == pytest.approx(np.exp(-1), abs=0.01)

    def test_empirical_mean_and_variance(self):
        rng = Rng(1)
        b = 1.5
        samples = rng.laplace_vector(b, 200_000)
        assert float(samples.mean()) == pytest.approx(0.0, abs=0.02)
        # Var[Lap(b)] = 2 b^2
        assert float(samples.var()) == pytest.approx(2 * b * b, rel=0.05)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            laplace_tail_bound(0.0, 1.0)
        with pytest.raises(ValueError):
            laplace_quantile(1.0, 0.0)
        with pytest.raises(ValueError):
            laplace_quantile(1.0, 1.5)


class TestLaplaceMechanism:
    def test_scalar_release_is_noisy(self):
        mech = LaplaceMechanism(1.0, 1.0, Rng(0))
        released = mech.release_scalar(10.0)
        assert released != 10.0  # almost surely

    def test_vector_release_shape(self):
        mech = LaplaceMechanism(1.0, 1.0, Rng(0))
        released = mech.release_vector([1.0, 2.0, 3.0])
        assert released.shape == (3,)

    def test_release_function(self):
        mech = LaplaceMechanism(1.0, 1.0, Rng(0))
        released = mech.release_function(lambda: [5.0, 6.0])
        assert released.shape == (2,)

    def test_noise_centered_on_truth(self):
        mech = LaplaceMechanism(1.0, 2.0, Rng(3))
        releases = [mech.release_scalar(7.0) for _ in range(20_000)]
        assert float(np.mean(releases)) == pytest.approx(7.0, abs=0.05)

    def test_scale_matches_sensitivity_over_eps(self):
        mech = LaplaceMechanism(3.0, 0.5, Rng(0))
        assert mech.scale == 6.0
        assert mech.sensitivity == 3.0
        assert mech.params.eps == 0.5

    def test_reproducible_from_seed(self):
        a = LaplaceMechanism(1.0, 1.0, Rng(42)).release_vector([0.0] * 5)
        b = LaplaceMechanism(1.0, 1.0, Rng(42)).release_vector([0.0] * 5)
        np.testing.assert_array_equal(a, b)

    def test_repr(self):
        mech = LaplaceMechanism(2.0, 1.0, Rng(0))
        assert "sensitivity=2" in repr(mech)


class TestRng:
    def test_spawn_independence(self):
        parent = Rng(5)
        a = parent.spawn()
        b = parent.spawn()
        assert a.laplace(1.0) != b.laplace(1.0)

    def test_spawn_reproducible(self):
        xs = [Rng(9).spawn().laplace(1.0) for _ in range(2)]
        assert xs[0] == xs[1]

    def test_bits_and_choice(self):
        rng = Rng(0)
        bits = rng.bits(100)
        assert set(bits) <= {0, 1}
        assert rng.choice([1, 2, 3]) in (1, 2, 3)

    def test_sample_without_replacement(self):
        rng = Rng(0)
        picked = rng.sample(list(range(10)), 10)
        assert sorted(picked) == list(range(10))
        with pytest.raises(ValueError):
            rng.sample([1, 2], 3)

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            Rng(0).choice([])

    def test_laplace_invalid_scale(self):
        with pytest.raises(PrivacyError):
            Rng(0).laplace(0.0)
        with pytest.raises(PrivacyError):
            Rng(0).laplace_vector(-1.0, 3)

    def test_permutation(self):
        perm = Rng(0).permutation(8)
        assert sorted(perm) == list(range(8))
