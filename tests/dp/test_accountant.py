"""Unit tests for :mod:`repro.dp.accountant`."""

from __future__ import annotations

import pytest

from repro import Accountant, BudgetExceededError, PrivacyParams


class TestAccountant:
    def test_initial_state(self):
        acc = Accountant(PrivacyParams(1.0, 1e-6))
        assert acc.spent is None
        assert acc.remaining_eps() == 1.0
        assert acc.remaining_delta() == 1e-6
        assert acc.records == []

    def test_spend_accumulates(self):
        acc = Accountant(PrivacyParams(1.0, 1e-6))
        acc.spend(PrivacyParams(0.25), label="paths")
        acc.spend(PrivacyParams(0.25, 5e-7), label="distances")
        spent = acc.spent
        assert spent is not None
        assert spent.eps == pytest.approx(0.5)
        assert spent.delta == pytest.approx(5e-7)
        assert [r.label for r in acc.records] == ["paths", "distances"]

    def test_exact_budget_allowed(self):
        acc = Accountant(PrivacyParams(1.0))
        acc.spend(PrivacyParams(0.5))
        acc.spend(PrivacyParams(0.5))
        assert acc.remaining_eps() == pytest.approx(0.0)

    def test_overspend_eps_fails_closed(self):
        acc = Accountant(PrivacyParams(1.0))
        acc.spend(PrivacyParams(0.9))
        with pytest.raises(BudgetExceededError):
            acc.spend(PrivacyParams(0.2))
        # State unchanged by the failed spend.
        assert acc.spent is not None and acc.spent.eps == pytest.approx(0.9)
        assert len(acc.records) == 1

    def test_overspend_delta_fails_closed(self):
        acc = Accountant(PrivacyParams(10.0, 1e-6))
        with pytest.raises(BudgetExceededError):
            acc.spend(PrivacyParams(0.1, 1e-5))

    def test_can_spend(self):
        acc = Accountant(PrivacyParams(1.0))
        assert acc.can_spend(PrivacyParams(1.0))
        assert not acc.can_spend(PrivacyParams(1.1))

    def test_repr(self):
        acc = Accountant(PrivacyParams(1.0))
        assert "Accountant" in repr(acc)
