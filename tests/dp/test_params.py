"""Unit tests for :mod:`repro.dp.params` (Definitions 2.1 and 2.2)."""

from __future__ import annotations

import pytest

from repro import PrivacyError, PrivacyParams
from repro.dp import l1_distance, weights_are_neighboring


class TestPrivacyParams:
    def test_pure(self):
        p = PrivacyParams(0.5)
        assert p.is_pure
        assert p.delta == 0.0
        assert str(p) == "0.5-DP"

    def test_approx(self):
        p = PrivacyParams(1.0, 1e-6)
        assert not p.is_pure
        assert "1e-06" in str(p)

    @pytest.mark.parametrize("eps", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_eps(self, eps):
        with pytest.raises(PrivacyError):
            PrivacyParams(eps)

    @pytest.mark.parametrize("delta", [-0.1, 1.0, 1.5])
    def test_invalid_delta(self, delta):
        with pytest.raises(PrivacyError):
            PrivacyParams(1.0, delta)

    def test_frozen(self):
        p = PrivacyParams(1.0)
        with pytest.raises(Exception):
            p.eps = 2.0  # type: ignore[misc]

    def test_split(self):
        p = PrivacyParams(1.0, 0.01)
        half = p.split(2)
        assert half.eps == 0.5
        assert half.delta == 0.005

    def test_split_invalid(self):
        with pytest.raises(PrivacyError):
            PrivacyParams(1.0).split(0)


class TestNeighboring:
    def test_l1_distance(self):
        w = {("a", "b"): 1.0, ("b", "c"): 2.0}
        w2 = {("a", "b"): 1.5, ("b", "c"): 1.8}
        assert l1_distance(w, w2) == pytest.approx(0.7)

    def test_l1_distance_missing_keys_as_zero(self):
        assert l1_distance({"e": 2.0}, {}) == 2.0
        assert l1_distance({}, {"e": 3.0}) == 3.0

    def test_neighboring_at_exact_boundary(self):
        w = {"e1": 0.0, "e2": 0.0}
        w2 = {"e1": 0.5, "e2": 0.5}
        assert weights_are_neighboring(w, w2)

    def test_not_neighboring(self):
        w = {"e1": 0.0}
        w2 = {"e1": 1.5}
        assert not weights_are_neighboring(w, w2)

    def test_custom_unit(self):
        """The Scaling remark of Section 1.2: unit 1/V instead of 1."""
        w = {"e1": 0.0}
        w2 = {"e1": 0.1}
        assert not weights_are_neighboring(w, w2, unit=0.05)
        assert weights_are_neighboring(w, w2, unit=0.2)

    def test_invalid_unit(self):
        with pytest.raises(PrivacyError):
            weights_are_neighboring({}, {}, unit=0.0)

    def test_identical_weights_are_neighbors(self):
        w = {"e": 1.0}
        assert weights_are_neighboring(w, dict(w))
