"""Unit tests for :mod:`repro.dp.exponential`."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import PrivacyError, Rng
from repro.dp.exponential import (
    ExponentialMechanism,
    exponential_mechanism_utility_bound,
)


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(PrivacyError):
            ExponentialMechanism(0.0, 1.0, Rng(0))
        with pytest.raises(PrivacyError):
            ExponentialMechanism(1.0, 0.0, Rng(0))

    def test_empty_candidates(self):
        mech = ExponentialMechanism(1.0, 1.0, Rng(0))
        with pytest.raises(PrivacyError):
            mech.choose_index([])

    def test_mismatched_lengths(self):
        mech = ExponentialMechanism(1.0, 1.0, Rng(0))
        with pytest.raises(PrivacyError):
            mech.choose(["a", "b"], [1.0])

    def test_utility_bound_formula(self):
        got = exponential_mechanism_utility_bound(2.0, 1.0, 100, 0.05)
        assert got == pytest.approx(math.log(2000))

    def test_utility_bound_validation(self):
        with pytest.raises(PrivacyError):
            exponential_mechanism_utility_bound(1.0, 1.0, 0, 0.05)


class TestSampling:
    def test_prefers_high_scores(self):
        mech = ExponentialMechanism(2.0, 1.0, Rng(0))
        counts = [0, 0, 0]
        for _ in range(5000):
            counts[mech.choose_index([0.0, 5.0, 0.0])] += 1
        assert counts[1] > 4500

    def test_uniform_on_equal_scores(self):
        mech = ExponentialMechanism(1.0, 1.0, Rng(1))
        counts = [0, 0]
        for _ in range(10_000):
            counts[mech.choose_index([3.0, 3.0])] += 1
        assert abs(counts[0] - counts[1]) < 500

    def test_probability_ratio_matches_definition(self):
        """Pr[c1]/Pr[c2] = exp(eps (q1 - q2) / (2 Delta))."""
        eps, gap = 1.0, 2.0
        mech = ExponentialMechanism(eps, 1.0, Rng(2))
        counts = [0, 0]
        trials = 60_000
        for _ in range(trials):
            counts[mech.choose_index([gap, 0.0])] += 1
        measured = counts[0] / counts[1]
        expected = math.exp(eps * gap / 2.0)
        assert measured == pytest.approx(expected, rel=0.1)

    def test_numerical_stability_large_scores(self):
        mech = ExponentialMechanism(1.0, 1.0, Rng(3))
        index = mech.choose_index([-1e9, -1e9 + 5.0])
        assert index in (0, 1)

    def test_empirical_dp_inequality(self):
        """Score vectors from neighboring inputs (each score moves by
        <= Delta): output probabilities within e^eps."""
        eps = 0.5
        rng = Rng(4)
        mech = ExponentialMechanism(eps, 1.0, rng)
        scores_w = [1.0, 0.0, 2.0]
        scores_w2 = [0.0, 1.0, 1.0]  # each moved by <= 1 = Delta
        trials = 40_000
        counts_w = np.zeros(3)
        counts_w2 = np.zeros(3)
        for _ in range(trials):
            counts_w[mech.choose_index(scores_w)] += 1
            counts_w2[mech.choose_index(scores_w2)] += 1
        p = counts_w / trials
        q = counts_w2 / trials
        slack = 3.0 * math.sqrt(2.0 / trials)
        for i in range(3):
            assert p[i] <= math.exp(eps) * q[i] + slack
            assert q[i] <= math.exp(eps) * p[i] + slack

    def test_utility_bound_holds_empirically(self):
        eps, gamma = 1.0, 0.05
        rng = Rng(5)
        scores = [0.0, -1.0, -2.0, -10.0, -20.0]
        mech = ExponentialMechanism(eps, 1.0, rng)
        bound = exponential_mechanism_utility_bound(
            eps, 1.0, len(scores), gamma
        )
        violations = 0
        trials = 2000
        for _ in range(trials):
            chosen = scores[mech.choose_index(scores)]
            if 0.0 - chosen > bound:
                violations += 1
        assert violations / trials <= gamma
