"""Unit tests for :mod:`repro.dp.composition` (Lemmas 3.3 and 3.4)."""

from __future__ import annotations

import math

import pytest

from repro import PrivacyError, PrivacyParams
from repro.dp import (
    advanced_composition,
    basic_composition,
)
from repro.dp.composition import advanced_composition_epsilon_per_query


class TestBasicComposition:
    def test_linear_scaling(self):
        total = basic_composition(PrivacyParams(0.1, 1e-8), 10)
        assert total.eps == pytest.approx(1.0)
        assert total.delta == pytest.approx(1e-7)

    def test_single_run_identity(self):
        p = PrivacyParams(0.3, 1e-6)
        assert basic_composition(p, 1) == p

    def test_invalid_k(self):
        with pytest.raises(PrivacyError):
            basic_composition(PrivacyParams(1.0), 0)


class TestAdvancedComposition:
    def test_formula(self):
        eps, k, delta_prime = 0.01, 100, 1e-6
        total = advanced_composition(PrivacyParams(eps), k, delta_prime)
        expected = math.sqrt(2 * k * math.log(1 / delta_prime)) * eps + (
            k * eps * (math.exp(eps) - 1)
        )
        assert total.eps == pytest.approx(expected)
        assert total.delta == pytest.approx(delta_prime)

    def test_beats_basic_for_many_queries(self):
        """The point of Lemma 3.4: sqrt(k) growth instead of k."""
        p = PrivacyParams(0.01)
        k = 10_000
        advanced = advanced_composition(p, k, 1e-9)
        basic = basic_composition(p, k)
        assert advanced.eps < basic.eps

    def test_delta_accumulates(self):
        total = advanced_composition(PrivacyParams(0.01, 1e-9), 10, 1e-6)
        assert total.delta == pytest.approx(1e-6 + 10 * 1e-9)

    def test_invalid_delta_prime(self):
        with pytest.raises(PrivacyError):
            advanced_composition(PrivacyParams(0.1), 5, 0.0)
        with pytest.raises(PrivacyError):
            advanced_composition(PrivacyParams(0.1), 5, 1.0)


class TestInverseComposition:
    def test_inverse_is_consistent(self):
        """Composing the solved per-query eps lands within the target."""
        total_eps, k, delta = 1.0, 500, 1e-6
        eps_q = advanced_composition_epsilon_per_query(total_eps, k, delta)
        recomposed = advanced_composition(PrivacyParams(eps_q), k, delta)
        assert recomposed.eps <= total_eps + 1e-9
        # and it is not wastefully small: doubling it must overshoot
        overshoot = advanced_composition(PrivacyParams(2 * eps_q), k, delta)
        assert overshoot.eps > total_eps

    def test_matches_paper_asymptotics(self):
        """eps_q ~ eps / sqrt(2 k ln(1/delta)) for small eps."""
        total_eps, k, delta = 0.5, 10_000, 1e-8
        eps_q = advanced_composition_epsilon_per_query(total_eps, k, delta)
        approx = total_eps / math.sqrt(2 * k * math.log(1 / delta))
        assert eps_q == pytest.approx(approx, rel=0.1)

    def test_single_query_recovers_full_budget(self):
        eps_q = advanced_composition_epsilon_per_query(1.0, 1, 1e-6)
        # With k = 1 the composed eps still includes the sqrt term, so
        # eps_q < 1, but it must satisfy consistency.
        recomposed = advanced_composition(PrivacyParams(eps_q), 1, 1e-6)
        assert recomposed.eps <= 1.0 + 1e-9

    def test_invalid_args(self):
        with pytest.raises(PrivacyError):
            advanced_composition_epsilon_per_query(0.0, 5, 1e-6)
        with pytest.raises(PrivacyError):
            advanced_composition_epsilon_per_query(1.0, 0, 1e-6)
        with pytest.raises(PrivacyError):
            advanced_composition_epsilon_per_query(1.0, 5, 2.0)

    def test_monotone_in_k(self):
        """More queries -> smaller per-query budget."""
        eps_small_k = advanced_composition_epsilon_per_query(1.0, 10, 1e-6)
        eps_large_k = advanced_composition_epsilon_per_query(1.0, 1000, 1e-6)
        assert eps_large_k < eps_small_k
