"""Unit tests for :mod:`repro.dp.bounds` — the paper's closed-form
bounds, checked for formula correctness, monotonicity and asymptotics."""

from __future__ import annotations

import math

import pytest

from repro import PrivacyError
from repro.dp import bounds


class TestPreliminaries:
    def test_laplace_union_bound_formula(self):
        assert bounds.laplace_union_bound(2.0, 10, 0.1) == pytest.approx(
            2.0 * math.log(100)
        )

    def test_laplace_union_bound_validation(self):
        with pytest.raises(PrivacyError):
            bounds.laplace_union_bound(2.0, 0, 0.1)
        with pytest.raises(PrivacyError):
            bounds.laplace_union_bound(2.0, 10, 1.5)

    def test_concentration_formula(self):
        """Lemma 3.1: 4 b sqrt(t ln(2/gamma))."""
        got = bounds.laplace_sum_concentration(1.5, 16, 0.05)
        assert got == pytest.approx(4 * 1.5 * math.sqrt(16 * math.log(40)))

    def test_concentration_beats_union_for_many_terms(self):
        """Summing t variables: concentration gives sqrt(t), the naive
        per-variable union bound gives t."""
        t, b, gamma = 400, 1.0, 0.05
        concentration = bounds.laplace_sum_concentration(b, t, gamma)
        naive = t * bounds.laplace_union_bound(b, t, gamma)
        assert concentration < naive

    def test_concentration_empirical(self):
        """The Lemma 3.1 bound holds empirically."""
        from repro import Rng

        rng = Rng(0)
        t, b, gamma = 50, 2.0, 0.01
        bound = bounds.laplace_sum_concentration(b, t, gamma)
        violations = 0
        trials = 2000
        for _ in range(trials):
            total = float(rng.laplace_vector(b, t).sum())
            if abs(total) >= bound:
                violations += 1
        assert violations / trials <= gamma


class TestSection4Bounds:
    def test_single_pair(self):
        assert bounds.single_pair_distance_error(2.0, 0.05) == pytest.approx(
            0.5 * math.log(20)
        )

    def test_all_pairs_scales(self):
        assert bounds.all_pairs_basic_noise_scale(10, 1.0) == 100.0
        advanced = bounds.all_pairs_advanced_noise_scale(10, 1.0, 1e-6)
        assert advanced == pytest.approx(
            10 * math.sqrt(2 * math.log(1e6))
        )
        assert advanced < 100.0  # advanced beats basic

    def test_synthetic_graph_error(self):
        got = bounds.synthetic_graph_distance_error(10, 20, 1.0, 0.1)
        assert got == pytest.approx(10 * math.log(200))

    def test_tree_single_source_polylog_growth(self):
        """Theorem 4.1's bound grows polylogarithmically in V."""
        small = bounds.tree_single_source_error(100, 1.0, 0.05)
        large = bounds.tree_single_source_error(10_000, 1.0, 0.05)
        # V grew 100x; a log^1.5 bound grows by (log 10^4/log 10^2)^1.5
        # = 2^1.5 ~ 2.83.
        assert large / small == pytest.approx(2 ** 1.5, rel=0.01)

    def test_tree_single_vertex_zero(self):
        assert bounds.tree_single_source_error(1, 1.0, 0.05) == 0.0
        assert bounds.tree_all_pairs_error(1, 1.0, 0.05) == 0.0

    def test_tree_all_pairs_exceeds_single_source(self):
        v, eps, gamma = 256, 1.0, 0.05
        assert bounds.tree_all_pairs_error(
            v, eps, gamma
        ) > bounds.tree_single_source_error(v, eps, gamma)

    def test_bounded_weight_approx_components(self):
        """2kM covering term + noise term."""
        got = bounds.bounded_weight_error_approx(
            k=3, covering_size=10, weight_bound=2.0, eps=1.0,
            delta=1e-6, gamma=0.05,
        )
        eps_prime = 1.0 / math.sqrt(2 * math.log(1e6))
        noise = (10 / eps_prime) * math.log(100 / 0.05)
        assert got == pytest.approx(2 * 3 * 2.0 + noise)

    def test_bounded_weight_pure_worse_than_approx(self):
        """Pure DP pays Z^2 instead of ~Z noise."""
        kwargs = dict(k=2, covering_size=20, weight_bound=1.0, eps=1.0, gamma=0.05)
        pure = bounds.bounded_weight_error_pure(**kwargs)
        approx = bounds.bounded_weight_error_approx(delta=1e-6, **kwargs)
        assert pure > approx

    def test_optimal_k_formulas(self):
        assert bounds.bounded_weight_optimal_k_approx(
            400, 1.0, 1.0
        ) == 20
        assert bounds.bounded_weight_optimal_k_pure(1000, 1.0, 1.0) == 99
        # clamped into [1, V-1]
        assert bounds.bounded_weight_optimal_k_approx(4, 100.0, 10.0) == 1

    def test_grid_error_scales_as_v_third(self):
        small = bounds.grid_error_approx(10**3, 1.0, 1.0, 1e-6, 0.05)
        large = bounds.grid_error_approx(10**6, 1.0, 1.0, 1e-6, 0.05)
        # V grew 1000x -> V^(1/3) grew 10x (log factor adds a bit).
        assert 10.0 < large / small < 25.0


class TestSection5Bounds:
    def test_shortest_path_error_formula(self):
        got = bounds.shortest_path_error(5, 100, 2.0, 0.1)
        assert got == pytest.approx((10 / 2.0) * math.log(1000))

    def test_worst_case_is_v_hops(self):
        assert bounds.shortest_path_error_worst_case(
            50, 100, 1.0, 0.1
        ) == bounds.shortest_path_error(50, 100, 1.0, 0.1)

    def test_zero_hops_zero_error(self):
        assert bounds.shortest_path_error(0, 10, 1.0, 0.1) == 0.0

    def test_reconstruction_lower_bound_small_eps(self):
        """alpha -> 0.5 (V-1) as eps, delta -> 0; the paper quotes
        0.49 (V-1) for sufficiently small eps, delta."""
        alpha = bounds.reconstruction_lower_bound(101, 0.01, 1e-9)
        assert alpha >= 0.49 * 100
        assert alpha <= 0.5 * 100

    def test_reconstruction_lower_bound_decreases_in_eps(self):
        lo = bounds.reconstruction_lower_bound(100, 2.0, 0.0)
        hi = bounds.reconstruction_lower_bound(100, 0.1, 0.0)
        assert lo < hi

    def test_reconstruction_lower_bound_nonnegative(self):
        # Huge delta: numerator clamps at 0.
        assert bounds.reconstruction_lower_bound(100, 1.0, 0.4) >= 0.0

    def test_row_recovery_bound(self):
        """Lemma 5.3: error probability >= (1-delta)/(1+e^eps)."""
        assert bounds.row_recovery_bound(0.0001, 0.0) == pytest.approx(
            0.5, abs=1e-4
        )
        assert bounds.row_recovery_bound(1.0, 0.0) == pytest.approx(
            1 / (1 + math.e)
        )


class TestAppendixBBounds:
    def test_mst_error_formula(self):
        got = bounds.mst_error(11, 30, 1.0, 0.1)
        assert got == pytest.approx(20 * math.log(300))

    def test_matching_error_formula(self):
        got = bounds.matching_error(40, 40, 2.0, 0.1)
        assert got == pytest.approx(20 * math.log(400))

    def test_mst_lower_bound_matches_path(self):
        assert bounds.mst_lower_bound(
            50, 0.5, 1e-9
        ) == bounds.reconstruction_lower_bound(50, 0.5, 1e-9)

    def test_matching_lower_bound_quarter_v(self):
        """Theorem B.4: ~0.12 V for small eps, delta."""
        alpha = bounds.matching_lower_bound(400, 0.01, 1e-9)
        assert alpha >= 0.12 * 400
        assert alpha <= 0.125 * 400


class TestDrv10Comparison:
    def test_integer_error_grows_with_total_weight(self):
        lo = bounds.drv10_integer_weights_error(100, 1000, 1.0, 1e-6)
        hi = bounds.drv10_integer_weights_error(10_000, 1000, 1.0, 1e-6)
        assert hi / lo == pytest.approx(10.0)

    def test_fractional_exponents(self):
        got = bounds.drv10_fractional_weights_error(8.0, 125, 1.0, math.exp(-1))
        assert got == pytest.approx((8.0 * 125) ** (1 / 3))

    def test_incomparability_regimes(self):
        """Section 1.3: DRV10 beats the V/eps baseline when ||w||_1 is
        small, loses when it is huge."""
        v, eps, delta, gamma = 10_000, 1.0, 1e-6, 0.05
        baseline = bounds.synthetic_graph_distance_error(v, 2 * v, eps, gamma)
        cheap = bounds.drv10_integer_weights_error(100, v, eps, delta)
        expensive = bounds.drv10_integer_weights_error(10**12, v, eps, delta)
        assert cheap < baseline < expensive
