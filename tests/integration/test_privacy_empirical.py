"""Empirical differential-privacy validation (Definition 2.2).

These tests check the actual DP inequality
``Pr[A(w) in S] <= e^eps Pr[A(w') in S] (+ slack)`` on neighboring
weight functions by Monte-Carlo estimation.  They cannot *prove*
privacy, but they catch the classic implementation bugs (wrong
sensitivity, noise on the wrong quantity, data-dependent noise scale).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Rng, WeightedGraph, private_distance
from repro.core import lower_bounds as lb
from repro.graphs import generators


def assert_dp_on_binary_output(
    outcomes_w: list[int], outcomes_w2: list[int], eps: float
) -> None:
    """Check the eps-DP inequality for a {0,1}-valued release from
    samples, with a 3-sigma statistical slack."""
    n1, n2 = len(outcomes_w), len(outcomes_w2)
    for value in (0, 1):
        p = sum(1 for o in outcomes_w if o == value) / n1
        q = sum(1 for o in outcomes_w2 if o == value) / n2
        slack = 3.0 * math.sqrt(1.0 / n1 + 1.0 / n2)
        assert p <= math.exp(eps) * q + slack, (
            f"DP violated for outcome {value}: {p} > e^{eps} * {q}"
        )


class TestLaplaceDistanceQuery:
    def test_scalar_release_dp_on_intervals(self):
        """private_distance on neighboring weights: interval
        probabilities obey the e^eps ratio."""
        eps = 1.0
        g1 = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        g2 = WeightedGraph.from_edges([(0, 1, 2.5), (1, 2, 3.5)])
        # ||w - w'||_1 = 1.0 -> neighboring.
        rng = Rng(0)
        samples1 = np.array(
            [private_distance(g1, 0, 2, eps, rng) for _ in range(30_000)]
        )
        samples2 = np.array(
            [private_distance(g2, 0, 2, eps, rng) for _ in range(30_000)]
        )
        # Check intervals around both means.
        for lo, hi in [(4.0, 5.0), (5.0, 6.0), (6.0, 7.0), (3.0, 4.0)]:
            p = float(np.mean((samples1 >= lo) & (samples1 < hi)))
            q = float(np.mean((samples2 >= lo) & (samples2 < hi)))
            slack = 3.0 * math.sqrt(2.0 / 30_000)
            assert p <= math.exp(eps) * q + slack
            assert q <= math.exp(eps) * p + slack


class TestPathReleaseChoice:
    def test_gadget_choice_dp(self):
        """On a 1-bit parallel gadget, the released edge choice obeys
        the DP inequality at 2*eps (the Lemma 5.2 reduction factor: the
        two encodings are at L1 distance 2)."""
        eps = 0.5
        gadget = lb.parallel_path_gadget(1)
        w0 = lb.path_weights_from_bits([0])
        w1 = lb.path_weights_from_bits([1])
        rng = Rng(1)
        trials = 20_000

        def sample(weights):
            outcomes = []
            for _ in range(trials):
                keys, _ = lb.private_gadget_path(
                    gadget, weights, eps=eps, gamma=0.2, rng=rng
                )
                outcomes.append(lb.decode_path_bits(1, keys)[0])
            return outcomes

        assert_dp_on_binary_output(sample(w0), sample(w1), 2 * eps)

    def test_gadget_choice_skewed_at_large_eps(self):
        """Sanity check on the test itself: at large eps the mechanism
        reveals the bit almost always, so the distributions differ."""
        gadget = lb.parallel_path_gadget(1)
        w0 = lb.path_weights_from_bits([0])
        rng = Rng(2)
        hits = 0
        for _ in range(300):
            keys, _ = lb.private_gadget_path(
                gadget, w0, eps=50.0, gamma=0.2, rng=rng
            )
            hits += lb.decode_path_bits(1, keys)[0] == 0
        assert hits > 290


class TestMstReleaseChoice:
    def test_star_gadget_choice_dp(self):
        eps = 0.5
        gadget = lb.star_gadget(1)
        w0 = lb.star_weights_from_bits([0])
        w1 = lb.star_weights_from_bits([1])
        rng = Rng(3)
        trials = 20_000

        def sample(weights):
            outcomes = []
            for _ in range(trials):
                tree, _ = lb.private_gadget_mst(
                    gadget, weights, eps=eps, rng=rng
                )
                outcomes.append(lb.decode_star_bits(1, tree)[0])
            return outcomes

        assert_dp_on_binary_output(sample(w0), sample(w1), 2 * eps)


class TestTreeReleaseDp:
    def test_tree_single_source_interval_dp(self):
        """Algorithm 1 on a 4-vertex path with neighboring weights."""
        from repro import release_tree_single_source

        eps = 1.0
        t1 = generators.path_graph(4)
        t2 = generators.path_graph(4)
        t2.set_weight(1, 2, 2.0)  # L1 distance 1 from t1
        rng = Rng(4)
        trials = 20_000
        samples1 = np.array(
            [
                release_tree_single_source(
                    t1, eps=eps, rng=rng, root=0
                ).distance_from_root(3)
                for _ in range(trials)
            ]
        )
        samples2 = np.array(
            [
                release_tree_single_source(
                    t2, eps=eps, rng=rng, root=0
                ).distance_from_root(3)
                for _ in range(trials)
            ]
        )
        for lo, hi in [(2.0, 3.0), (3.0, 4.0), (4.0, 5.0)]:
            p = float(np.mean((samples1 >= lo) & (samples1 < hi)))
            q = float(np.mean((samples2 >= lo) & (samples2 < hi)))
            slack = 3.0 * math.sqrt(2.0 / trials)
            assert p <= math.exp(eps) * q + slack
            assert q <= math.exp(eps) * p + slack


class TestSensitivityRegression:
    def test_wrong_sensitivity_would_fail(self):
        """Negative control: a deliberately broken mechanism (noise
        scale eps too large by 4x) violates the inequality the other
        tests rely on — confirming the empirical test has power."""
        eps = 1.0
        broken_eps = 4.0  # pretends to be eps=1 but adds 4x less noise
        rng = Rng(5)
        trials = 40_000
        samples1 = np.array(
            [5.0 + rng.laplace(1.0 / broken_eps) for _ in range(trials)]
        )
        samples2 = np.array(
            [6.0 + rng.laplace(1.0 / broken_eps) for _ in range(trials)]
        )
        violated = False
        for lo, hi in [(4.5, 5.0), (5.0, 5.5), (4.0, 4.5)]:
            p = float(np.mean((samples1 >= lo) & (samples1 < hi)))
            q = float(np.mean((samples2 >= lo) & (samples2 < hi)))
            slack = 3.0 * math.sqrt(2.0 / trials)
            if p > math.exp(eps) * q + slack:
                violated = True
        assert violated
