"""Smoke tests: every shipped example runs to completion.

Examples are part of the public deliverable; a release where
``python examples/quickstart.py`` crashes is broken regardless of unit
coverage.  Each example is executed in-process via ``runpy`` (fast, and
coverage-friendly) with a captured stdout.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_quickstart_reports_bounds(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Thm 5.5 bound" in out
    assert "private route" in out


def test_reconstruction_example_shows_tradeoff(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "reconstruction_attack.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "adversary recovers 120/120 bits" in out
    assert "alpha floor" in out
