"""Integration tests: whole-pipeline scenarios combining substrates,
mechanisms, workloads and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Accountant,
    BudgetExceededError,
    PrivacyParams,
    Rng,
    release_bounded_weight,
    release_private_paths,
    release_tree_all_pairs,
)
from repro.algorithms import dijkstra_path, path_hops
from repro.analysis import path_error, summarize_errors
from repro.dp import bounds
from repro.graphs import RootedTree, generators
from repro.graphs.io import graph_from_json, graph_to_json
from repro.workloads import (
    congestion_weights,
    grid_road_network,
    pairs_by_hop_bucket,
    rush_hour_scenario,
    uniform_pairs,
)


class TestNavigationScenario:
    """The paper's motivating application (Section 1.1): a navigation
    provider with private congestion data releases routes."""

    def test_private_routes_on_congested_city(self):
        rng = Rng(100)
        network = grid_road_network(10, 10, rng)
        congested = rush_hour_scenario(
            network, rng, center=(5.0, 5.0), hot_radius=3.0, slowdown=4.0
        )
        release = release_private_paths(congested, eps=1.0, gamma=0.05, rng=rng)
        pairs = uniform_pairs(congested, 20, rng)
        errors = [path_error(congested, release.path(s, t)) for s, t in pairs]
        summary = summarize_errors(errors)
        # Every route is valid and within the worst-case bound.
        worst_case = bounds.shortest_path_error_worst_case(
            congested.num_vertices, congested.num_edges, 1.0, 0.05
        )
        assert summary.maximum <= worst_case
        assert summary.mean >= 0.0

    def test_hop_stratified_accuracy(self):
        """Theorem 5.5 in action on a road network: near pairs get
        proportionally smaller error than far pairs."""
        rng = Rng(101)
        network = grid_road_network(12, 12, rng)
        release = release_private_paths(
            network.graph, eps=1.0, gamma=0.05, rng=rng
        )
        buckets = pairs_by_hop_bucket(
            network.graph, rng, per_bucket=12, buckets=[(1, 3), (12, 22)]
        )
        near_errors = [
            path_error(network.graph, release.path(s, t))
            for s, t in buckets[(1, 3)]
        ]
        far_errors = [
            path_error(network.graph, release.path(s, t))
            for s, t in buckets[(12, 22)]
        ]
        assert np.mean(near_errors) <= np.mean(far_errors) + 1e-9

    def test_bounded_weight_oracle_for_capped_traffic(self):
        """Congestion capped at M feeds Algorithm 2 end to end."""
        rng = Rng(102)
        network = grid_road_network(7, 7, rng, block_minutes=1.0)
        cap = 2.0
        capped = congestion_weights(network, rng, congestion_level=0.8, cap=cap)
        release = release_bounded_weight(
            capped, cap * (1.0 + 0.3), eps=1.0, rng=rng, delta=1e-6
        )
        value = release.distance((0, 0), (6, 6))
        assert np.isfinite(value)


class TestBudgetedService:
    """A service answering several query types from one budget."""

    def test_accountant_gates_releases(self):
        rng = Rng(103)
        graph = generators.grid_graph(6, 6)
        accountant = Accountant(PrivacyParams(1.0))

        paths_params = PrivacyParams(0.5)
        accountant.spend(paths_params, label="all-pairs paths")
        release_private_paths(graph, paths_params.eps, 0.05, rng)

        dist_params = PrivacyParams(0.4)
        accountant.spend(dist_params, label="bounded distances")
        release_bounded_weight(graph, 1.0, dist_params.eps, rng)

        # Third release exceeds the remaining 0.1 budget.
        with pytest.raises(BudgetExceededError):
            accountant.spend(PrivacyParams(0.2), label="extra")
        assert accountant.remaining_eps() == pytest.approx(0.1)


class TestSerializationPipeline:
    def test_released_graph_round_trips_and_answers(self):
        """Publish the Algorithm 3 release as JSON; a consumer restores
        it and computes paths — pure post-processing."""
        rng = Rng(104)
        graph = generators.grid_graph(5, 5)
        release = release_private_paths(graph, eps=1.0, gamma=0.05, rng=rng)
        payload = graph_to_json(release.graph)
        restored = graph_from_json(payload)
        path, _ = dijkstra_path(restored, (0, 0), (4, 4))
        assert graph.is_path(path)


class TestTreeScenario:
    def test_hierarchy_distances_for_network_topology(self):
        """All-pairs distances on a spanning-tree backbone: the
        Section 4.1 algorithm beats the naive baseline end to end."""
        rng = Rng(105)
        tree = generators.random_tree(200, rng)
        tree = generators.assign_random_weights(tree, rng, 1.0, 10.0)
        rooted = RootedTree(tree, 0)
        release = release_tree_all_pairs(rooted, eps=1.0, rng=rng)
        sample_pairs = [(3, 190), (17, 44), (0, 123), (60, 61)]
        errors = [
            abs(release.distance(x, y) - rooted.distance(x, y))
            for x, y in sample_pairs
        ]
        naive_scale = tree.num_vertices / 1.0  # ~V/eps baseline
        assert max(errors) < naive_scale

    def test_consistency_between_tree_and_path_algorithms(self):
        """The path graph is a tree: Algorithm 1 and the Appendix A
        hierarchy must achieve comparable accuracy on it."""
        from repro import release_path_hierarchy, release_tree_single_source

        rng = Rng(106)
        n = 128
        g = generators.path_graph(n)
        g = generators.assign_random_weights(g, rng, 0.0, 5.0)
        rooted = RootedTree(g, 0)
        tree_errors, hub_errors = [], []
        for _ in range(10):
            tree_rel = release_tree_single_source(rooted, eps=1.0, rng=rng)
            hub_rel = release_path_hierarchy(g, eps=1.0, rng=rng)
            for v in range(0, n, 13):
                true = rooted.distance_from_root(v)
                tree_errors.append(abs(tree_rel.distance_from_root(v) - true))
                hub_errors.append(abs(hub_rel.distance(0, v) - true))
        ratio = np.mean(tree_errors) / max(np.mean(hub_errors), 1e-9)
        assert 0.2 < ratio < 5.0  # same order of magnitude


class TestLowerBoundStory:
    def test_accuracy_privacy_tradeoff_demonstrated(self):
        """The complete Section 5 narrative in one test: the exact
        solver reconstructs perfectly (blatant leak), the private one
        pays ~alpha in error but resists reconstruction."""
        from repro.core import lower_bounds as lb

        rng = Rng(107)
        n, eps = 50, 0.1
        bits = rng.bits(n)
        gadget = lb.parallel_path_gadget(n)
        weights = lb.path_weights_from_bits(bits)

        exact_keys = lb.exact_gadget_path(gadget, weights)
        assert lb.decode_path_bits(n, exact_keys) == bits  # leak

        hamming_fracs, path_errors_ = [], []
        for _ in range(20):
            keys, _ = lb.private_gadget_path(
                gadget, weights, eps=eps, gamma=0.1, rng=rng.spawn()
            )
            decoded = lb.decode_path_bits(n, keys)
            hamming_fracs.append(lb.hamming_distance(bits, decoded) / n)
            concrete = gadget.with_weights(weights)
            path_errors_.append(concrete.path_weight(keys))
        # Resists reconstruction...
        assert np.mean(hamming_fracs) > 0.35
        # ...and therefore pays Omega(V) error (alpha ~ 0.47 n here).
        alpha = bounds.reconstruction_lower_bound(n + 1, eps, 0.0)
        assert np.mean(path_errors_) >= 0.8 * alpha
