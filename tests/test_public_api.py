"""Contract tests for the public API surface.

A downstream user should be able to rely on everything in ``__all__``
existing, being importable, and carrying a docstring.  These tests also
pin the privacy-parameter plumbing conventions shared by all releases.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graphs",
            "repro.graphs.graph",
            "repro.graphs.multigraph",
            "repro.graphs.tree",
            "repro.graphs.generators",
            "repro.graphs.io",
            "repro.algorithms",
            "repro.algorithms.traversal",
            "repro.algorithms.shortest_paths",
            "repro.algorithms.spanning_tree",
            "repro.algorithms.matching",
            "repro.algorithms.covering",
            "repro.engine",
            "repro.engine.csr",
            "repro.engine.kernels",
            "repro.engine.backends",
            "repro.dp",
            "repro.dp.params",
            "repro.dp.mechanisms",
            "repro.dp.composition",
            "repro.dp.accountant",
            "repro.dp.bounds",
            "repro.core",
            "repro.core.distance_oracle",
            "repro.core.synthetic_graph",
            "repro.core.private_paths",
            "repro.core.tree_distances",
            "repro.core.path_hierarchy",
            "repro.core.bounded_weight",
            "repro.core.cycle_distances",
            "repro.core.mst",
            "repro.core.matching",
            "repro.core.lower_bounds",
            "repro.workloads",
            "repro.workloads.traffic",
            "repro.workloads.queries",
            "repro.mechanisms",
            "repro.serving",
            "repro.serving.synopsis",
            "repro.serving.service",
            "repro.serving.ledger",
            "repro.serving.batching",
            "repro.serving.config",
            "repro.serving.estimates",
            "repro.serving.sharding",
            "repro.serving.simulate",
            "repro.analysis",
            "repro.analysis.errors",
            "repro.analysis.experiments",
            "repro.analysis.tables",
            "repro.privlint",
            "repro.privlint.engine",
            "repro.privlint.findings",
            "repro.privlint.report",
            "repro.privlint.rules",
            "repro.privlint.suppressions",
        ],
    )
    def test_submodules_import_and_are_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_public_callables_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestReleaseConventions:
    """Every release object exposes ``.params`` with its guarantee."""

    def test_all_releases_report_params(self, rng):
        from repro.graphs import RootedTree, generators

        grid = generators.grid_graph(4, 4)
        tree = generators.random_tree(10, rng)
        cycle = generators.cycle_graph(8)
        path = generators.path_graph(8)
        releases = [
            repro.release_synthetic_graph(grid, 1.0, rng),
            repro.release_private_paths(grid, 1.0, 0.1, rng),
            repro.release_tree_single_source(tree, 1.0, rng, root=0),
            repro.release_tree_all_pairs(RootedTree(tree, 0), 1.0, rng),
            repro.release_path_hierarchy(path, 1.0, rng),
            repro.release_bounded_weight(grid, 1.0, 1.0, rng),
            repro.release_cycle_distances(cycle, 1.0, rng),
            repro.release_private_mst(grid, 1.0, rng),
        ]
        for release in releases:
            assert release.params.eps == 1.0
            assert release.params.delta == 0.0

    def test_exception_hierarchy(self):
        assert issubclass(repro.GraphError, repro.ReproError)
        assert issubclass(repro.PrivacyError, repro.ReproError)
        assert issubclass(repro.BudgetExceededError, repro.PrivacyError)
        assert issubclass(repro.VertexNotFoundError, repro.GraphError)
        assert issubclass(repro.NotATreeError, repro.GraphError)
