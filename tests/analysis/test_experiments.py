"""Unit tests for :mod:`repro.analysis.experiments`."""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentResult, run_trials, summarize_errors, sweep
from repro.analysis.experiments import results_table


class TestRunTrials:
    def test_pooling(self):
        errors = run_trials(lambda rng: [1.0, 2.0], trials=3, seed=0)
        assert errors == [1.0, 2.0] * 3

    def test_reproducible(self):
        def trial(rng):
            return [rng.laplace(1.0)]

        a = run_trials(trial, trials=5, seed=7)
        b = run_trials(trial, trials=5, seed=7)
        assert a == b

    def test_trials_independent(self):
        def trial(rng):
            return [rng.laplace(1.0)]

        errors = run_trials(trial, trials=5, seed=7)
        assert len(set(errors)) == 5

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            run_trials(lambda rng: [1.0], trials=0, seed=0)


class TestSweep:
    def test_settings_and_bounds(self):
        settings = [{"v": 10}, {"v": 20}]
        results = sweep(
            settings,
            trial_factory=lambda s: (lambda rng: [float(s["v"])]),
            trials=2,
            seed=0,
            bound=lambda s: s["v"] * 2.0,
        )
        assert len(results) == 2
        assert results[0].summary.maximum == 10.0
        assert results[0].predicted_bound == 20.0
        assert results[0].within_bound is True

    def test_no_bound(self):
        results = sweep(
            [{"v": 1}],
            trial_factory=lambda s: (lambda rng: [0.5]),
            trials=1,
            seed=0,
        )
        assert results[0].within_bound is None


class TestResultsTable:
    def test_rendering(self):
        result = ExperimentResult(
            setting={"v": 10, "eps": 1.0},
            summary=summarize_errors([1.0, 2.0]),
            predicted_bound=5.0,
        )
        table = results_table([result], ["v", "eps"], title="E1")
        assert "E1" in table
        assert "bound" in table
        assert "within" in table
        assert "10" in table

    def test_rendering_without_bounds(self):
        result = ExperimentResult(
            setting={"v": 10},
            summary=summarize_errors([1.0]),
        )
        table = results_table([result], ["v"])
        assert "bound" not in table
