"""Unit tests for :mod:`repro.analysis.errors`."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ErrorSummary,
    distance_errors,
    path_error,
    summarize_errors,
)
from repro.analysis.errors import path_errors
from repro.graphs import generators


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize_errors([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(22.0)
        assert summary.median == 3.0
        assert summary.maximum == 100.0
        assert summary.p95 >= summary.median
        assert summary.p99 >= summary.p95

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors([])

    def test_row_and_headers_align(self):
        summary = summarize_errors([1.0])
        assert len(summary.as_row()) == len(ErrorSummary.headers())


class TestDistanceErrors:
    def test_zero_for_exact_oracle(self, grid5):
        from repro.algorithms import dijkstra_path

        pairs = [((0, 0), (4, 4)), ((1, 1), (3, 0))]
        errors = distance_errors(
            grid5, pairs, lambda s, t: dijkstra_path(grid5, s, t)[1]
        )
        assert errors == [0.0, 0.0]

    def test_absolute_value(self, grid5):
        pairs = [((0, 0), (0, 1))]
        errors = distance_errors(grid5, pairs, lambda s, t: -5.0)
        assert errors == [6.0]


class TestPathError:
    def test_shortest_path_zero_error(self, triangle):
        assert path_error(triangle, [0, 1, 2]) == 0.0

    def test_detour_positive_error(self, triangle):
        assert path_error(triangle, [0, 2]) == 1.0  # 4 vs 3

    def test_path_errors_batch(self, grid5):
        errors = path_errors(
            grid5,
            [((0, 0), (0, 2))],
            lambda s, t: [(0, 0), (1, 0), (1, 1), (1, 2), (0, 2)],
        )
        assert errors == [2.0]  # 4 hops vs 2

    def test_nonnegative_by_optimality(self, rng):
        """Any valid path's error is >= 0."""
        g = generators.grid_graph(4, 4)
        # a meandering but valid path
        path = [(0, 0), (1, 0), (1, 1), (0, 1), (0, 2)]
        assert path_error(g, path) >= 0.0
