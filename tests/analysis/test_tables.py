"""Unit tests for :mod:`repro.analysis.tables`."""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.analysis.tables import format_value


class TestFormatValue:
    def test_int(self):
        assert format_value(42) == "42"

    def test_bool(self):
        assert format_value(True) == "True"

    def test_float_fixed(self):
        assert format_value(3.14159, precision=3) == "3.142"

    def test_float_scientific_for_extremes(self):
        assert "e" in format_value(1.5e7)
        assert "e" in format_value(1.5e-7)

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_structure(self):
        table = render_table(
            ["V", "error"], [[10, 1.5], [100, 2.5]], title="demo"
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "V" in lines[1] and "error" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "10" in lines[3]
        assert "100" in lines[4]

    def test_no_title(self):
        table = render_table(["a"], [[1]])
        assert table.splitlines()[0].strip() == "a"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        table = render_table(["a", "b"], [])
        assert "a" in table

    def test_alignment_consistent(self):
        table = render_table(["col"], [[1], [1000]])
        lines = table.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])
