"""CSR compilation: vertex/index mapping, caching, re-weighting."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Rng, WeightedGraph
from repro.engine import CSRGraph, compile_csr
from repro.exceptions import EngineError, VertexNotFoundError, WeightError
from repro.graphs import generators


class TestMapping:
    def test_indices_follow_insertion_order(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        assert [csr.index_of(v) for v in triangle.vertices()] == [0, 1, 2]
        assert csr.vertices == (0, 1, 2)

    def test_round_trip_hashable_vertices(self):
        # Vertices need not be ints: strings, tuples and mixed types
        # must survive the index round trip unchanged.
        labels = ["hub", ("grid", 3, 4), "leaf", frozenset({1, 2})]
        graph = WeightedGraph.from_edges(
            [
                (labels[0], labels[1], 1.5),
                (labels[1], labels[2], 2.5),
                (labels[2], labels[3], 3.5),
            ]
        )
        csr = CSRGraph.from_graph(graph)
        for v in labels:
            assert csr.vertex_at(csr.index_of(v)) == v
        assert list(csr.indices_of(labels)) == [
            csr.index_of(v) for v in labels
        ]

    def test_unknown_vertex_raises(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        with pytest.raises(VertexNotFoundError):
            csr.index_of("nope")

    def test_index_out_of_range_raises(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        with pytest.raises(EngineError):
            csr.vertex_at(3)

    def test_arc_arrays_match_adjacency(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        assert csr.n == 3
        assert csr.num_edges == 3
        assert csr.num_arcs == 6  # undirected: two arcs per edge
        for v in triangle.vertices():
            i = csr.index_of(v)
            neighbors = {
                csr.vertex_at(int(u)): w
                for u, w in zip(
                    csr.indices[csr.indptr[i] : csr.indptr[i + 1]],
                    csr.weights[csr.indptr[i] : csr.indptr[i + 1]],
                )
            }
            assert neighbors == dict(triangle.neighbors(v))

    def test_directed_graph_single_arcs(self):
        graph = WeightedGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.0)], directed=True
        )
        csr = CSRGraph.from_graph(graph)
        assert csr.num_arcs == 2
        assert csr.directed

    def test_isolated_vertices_compile(self):
        graph = WeightedGraph()
        graph.add_vertex("a")
        graph.add_vertex("b")
        csr = CSRGraph.from_graph(graph)
        assert csr.n == 2 and csr.num_arcs == 0


class TestCache:
    def test_unchanged_graph_returns_same_object(self, grid5):
        assert CSRGraph.from_graph(grid5) is CSRGraph.from_graph(grid5)

    def test_set_weight_reuses_structure(self, grid5):
        before = CSRGraph.from_graph(grid5)
        grid5.set_weight((0, 0), (0, 1), 7.0)
        after = CSRGraph.from_graph(grid5)
        assert after is not before
        # The cheap path: shared frozen structure, fresh weights.
        assert after.indptr is before.indptr
        assert after.indices is before.indices
        assert 7.0 in after.weights
        assert 7.0 not in before.weights

    def test_add_edge_rebuilds_structure(self, grid5):
        before = CSRGraph.from_graph(grid5)
        grid5.add_edge((0, 0), (4, 4), 0.5)
        after = CSRGraph.from_graph(grid5)
        assert after.indptr is not before.indptr
        assert after.num_edges == before.num_edges + 1

    def test_graph_with_weights_inherits_structure(self, grid5):
        # The per-epoch serving pattern: compile once, then re-weight
        # via WeightedGraph.with_weights each epoch.  The epoch clone
        # must reuse the parent's frozen structure arrays.
        parent_csr = CSRGraph.from_graph(grid5)
        epoch = grid5.with_weights(np.full(grid5.num_edges, 2.5))
        epoch_csr = CSRGraph.from_graph(epoch)
        assert epoch_csr.indptr is parent_csr.indptr
        assert epoch_csr.indices is parent_csr.indices
        assert (epoch_csr.edge_weights == 2.5).all()

    def test_with_weights_without_compile_stays_independent(self, grid5):
        # No compiled parent: the clone builds from scratch, correctly.
        epoch = grid5.with_weights(np.full(grid5.num_edges, 3.0))
        csr = CSRGraph.from_graph(epoch)
        assert (csr.edge_weights == 3.0).all()

    def test_cache_opt_out(self, triangle):
        a = CSRGraph.from_graph(triangle, cache=False)
        b = CSRGraph.from_graph(triangle, cache=False)
        assert a is not b

    def test_version_counters_drive_invalidation(self, triangle):
        topo, wver = triangle.topology_version, triangle.weights_version
        triangle.set_weight(0, 1, 9.0)
        assert triangle.topology_version == topo
        assert triangle.weights_version > wver
        triangle.add_edge(0, "new", 1.0)
        assert triangle.topology_version > topo


class TestReweighting:
    def test_with_weights_aligns_with_edge_list(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        new = csr.with_weights([10.0, 20.0, 30.0])
        expected = dict(zip(triangle.edge_list(), [10.0, 20.0, 30.0]))
        for (u, v), w in expected.items():
            i = csr.index_of(u)
            row = slice(new.indptr[i], new.indptr[i + 1])
            neighbors = dict(zip(new.indices[row], new.weights[row]))
            assert neighbors[csr.index_of(v)] == w

    def test_with_weights_shares_structure(self, grid5):
        csr = CSRGraph.from_graph(grid5)
        new = csr.with_weights(np.ones(grid5.num_edges))
        assert new.indptr is csr.indptr and new.indices is csr.indices

    def test_with_weights_wrong_length_raises(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        with pytest.raises(WeightError):
            csr.with_weights([1.0, 2.0])

    def test_weight_arrays_are_frozen(self, triangle):
        csr = CSRGraph.from_graph(triangle)
        with pytest.raises(ValueError):
            csr.weights[0] = 99.0
        with pytest.raises(ValueError):
            csr.edge_weights[0] = 99.0

    def test_matches_graph_weight_vector(self):
        rng = Rng(7)
        graph = generators.assign_random_weights(
            generators.grid_graph(4, 6), rng, low=0.5, high=3.0
        )
        csr = CSRGraph.from_graph(graph)
        assert np.array_equal(csr.edge_weights, graph.weight_vector())
        assert np.array_equal(
            csr.weights, csr.edge_weights[csr.arc_edge]
        )

    def test_compile_csr_alias(self, triangle):
        assert compile_csr(triangle) is CSRGraph.from_graph(triangle)
