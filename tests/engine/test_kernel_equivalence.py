"""Seeded randomized equivalence: CSR kernels vs the pure-Python
reference, asserted *exactly*.

All random weights are integer-valued, so every path sum is exactly
representable in float64 and bit-level equality is the right assertion
(for the Dijkstra-shaped kernels it would hold for arbitrary floats
too — both compute minima over left-associated sums — but integer
weights also let the re-associating min-plus kernel be checked
exactly).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Rng, WeightedGraph
from repro.algorithms.shortest_paths import (
    all_pairs_dijkstra,
    bellman_ford,
    dijkstra,
    dijkstra_path,
)
from repro.engine import CSRGraph, kernels
from repro.engine.backends import get_backend
from repro.exceptions import GraphError, WeightError
from repro.graphs import generators

SEED = 999331


def _integer_weights(graph: WeightedGraph, rng: Rng) -> WeightedGraph:
    return graph.with_weights(
        [float(rng.integer(1, 20)) for _ in range(graph.num_edges)]
    )


def _random_sparse(rng: Rng) -> WeightedGraph:
    return _integer_weights(
        generators.erdos_renyi_graph(40, 0.08, rng), rng
    )


def _grid(rng: Rng) -> WeightedGraph:
    return _integer_weights(generators.grid_graph(7, 9), rng)


def _tree(rng: Rng) -> WeightedGraph:
    return _integer_weights(generators.random_tree(50, rng), rng)


def _disconnected(rng: Rng) -> WeightedGraph:
    # Two sparse components plus an isolated vertex.
    graph = _integer_weights(
        generators.erdos_renyi_graph(20, 0.15, rng), rng
    )
    other = _integer_weights(
        generators.erdos_renyi_graph(15, 0.2, rng), rng
    )
    for u, v, w in other.edges():
        graph.add_edge(("b", u), ("b", v), w)
    graph.add_vertex("isolated")
    return graph


FAMILIES = [_random_sparse, _grid, _tree, _disconnected]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("trial", range(3))
class TestBackendEquivalence:
    def _graph(self, family, trial):
        return family(Rng(SEED + 101 * trial))

    def test_all_pairs_exact(self, family, trial):
        graph = self._graph(family, trial)
        assert all_pairs_dijkstra(graph, backend="python") == (
            all_pairs_dijkstra(graph, backend="numpy")
        )

    def test_sssp_exact(self, family, trial):
        graph = self._graph(family, trial)
        source = graph.vertex_list()[0]
        d_py, _ = dijkstra(graph, source, backend="python")
        d_np, p_np = dijkstra(graph, source, backend="numpy")
        assert d_py == d_np
        # The numpy parents reconstruct optimal-weight paths (the
        # tree itself may differ under ties).
        for t in list(d_np)[:10]:
            if t == source:
                continue
            path = [t]
            while path[-1] != source:
                path.append(p_np[path[-1]])
            path.reverse()
            assert graph.path_weight(path) == d_py[t]

    def test_sources_subset_exact(self, family, trial):
        graph = self._graph(family, trial)
        sources = graph.vertex_list()[::5]
        assert all_pairs_dijkstra(
            graph, sources=sources, backend="python"
        ) == all_pairs_dijkstra(graph, sources=sources, backend="numpy")

    def test_relaxation_fallback_exact(self, family, trial):
        # The scipy-free kernel must agree even when scipy is present.
        graph = self._graph(family, trial)
        reference = all_pairs_dijkstra(graph, backend="python")
        csr = CSRGraph.from_graph(graph)
        matrix = kernels.relaxation_distances(csr, range(csr.n))
        inf = float("inf")
        for i, s in enumerate(csr.vertices):
            row = {
                csr.vertices[j]: d
                for j, d in enumerate(matrix[i].tolist())
                if d != inf
            }
            assert row == reference[s]

    def test_bellman_ford_distances_exact(self, family, trial):
        graph = self._graph(family, trial)
        source = graph.vertex_list()[-1]
        reference, _ = bellman_ford(graph, source)
        csr = CSRGraph.from_graph(graph)
        dist = kernels.bellman_ford_distances(csr, csr.index_of(source))
        inf = float("inf")
        computed = {
            csr.vertices[i]: d
            for i, d in enumerate(dist.tolist())
            if d != inf
        }
        assert computed == reference


class TestMinPlus:
    @pytest.mark.parametrize("trial", range(3))
    def test_exact_on_integer_grids(self, trial):
        graph = _grid(Rng(SEED + trial))
        reference = all_pairs_dijkstra(graph, backend="python")
        csr = CSRGraph.from_graph(graph)
        dense = kernels.min_plus_apsp(kernels.dense_distance_matrix(csr))
        for i, s in enumerate(csr.vertices):
            for j, t in enumerate(csr.vertices):
                assert dense[i, j] == reference[s][t]

    def test_disconnected_stays_infinite(self):
        graph = _disconnected(Rng(SEED))
        csr = CSRGraph.from_graph(graph)
        dense = kernels.min_plus_apsp(kernels.dense_distance_matrix(csr))
        iso = csr.index_of("isolated")
        other = csr.index_of(0)
        assert dense[iso, other] == float("inf")
        assert dense[iso, iso] == 0.0


class TestSemanticsParity:
    def test_early_exit_target_matches(self):
        graph = _grid(Rng(SEED))
        source, target = (0, 0), (6, 8)
        d_py, _ = dijkstra(graph, source, target=target, backend="python")
        d_np, _ = dijkstra(graph, source, target=target, backend="numpy")
        assert d_py == d_np  # identical settled sets, not just target

    def test_dijkstra_path_agrees_across_backends(self):
        graph = _grid(Rng(SEED + 5))
        path_py, w_py = dijkstra_path(graph, (0, 0), (6, 8))
        d_np, _ = dijkstra(graph, (0, 0), backend="numpy")
        assert graph.path_weight(path_py) == w_py
        assert d_np[(6, 8)] == w_py

    def test_negative_weight_raises_on_both_backends(self):
        graph = WeightedGraph.from_edges(
            [(0, 1, 1.0), (1, 2, -2.0), (0, 2, 1.0)]
        )
        for name in ("python", "numpy"):
            with pytest.raises(WeightError):
                dijkstra(graph, 0, backend=name)
            with pytest.raises(WeightError):
                all_pairs_dijkstra(graph, backend=name)

    def test_negative_cycle_detected(self):
        graph = WeightedGraph.from_edges(
            [(0, 1, 1.0), (1, 2, -3.0), (2, 0, 1.0)], directed=True
        )
        csr = CSRGraph.from_graph(graph)
        with pytest.raises(GraphError):
            kernels.bellman_ford_distances(csr, 0)

    def test_directed_negative_bellman_ford(self):
        # Negative arcs, no negative cycle: the Appendix-B regime.
        graph = WeightedGraph.from_edges(
            [(0, 1, 4.0), (0, 2, 2.0), (2, 1, -1.0), (1, 3, 3.0)],
            directed=True,
        )
        reference, _ = bellman_ford(graph, 0)
        csr = CSRGraph.from_graph(graph)
        dist = kernels.bellman_ford_distances(csr, 0)
        for v, d in reference.items():
            assert dist[csr.index_of(v)] == d


class TestPathReconstruction:
    def test_index_path_matches_vertex_path(self):
        graph = _grid(Rng(SEED + 9))
        csr = CSRGraph.from_graph(graph)
        s, t = csr.index_of((0, 0)), csr.index_of((6, 8))
        dist, pred = kernels.sssp_dijkstra(csr, s)
        idx_path = kernels.path_from_predecessors(pred, s, t)
        vertex_path = [csr.vertex_at(i) for i in idx_path]
        assert graph.is_path(vertex_path)
        assert graph.path_weight(vertex_path) == dist[t]

    def test_unreachable_raises(self):
        graph = _disconnected(Rng(SEED + 2))
        csr = CSRGraph.from_graph(graph)
        s = csr.index_of(0)
        dist, pred = kernels.sssp_dijkstra(csr, s)
        from repro.exceptions import DisconnectedGraphError

        with pytest.raises(DisconnectedGraphError):
            kernels.path_from_predecessors(
                pred, s, csr.index_of("isolated")
            )


class TestLaplacePerturb:
    def test_matches_scalar_draws(self):
        weights = np.arange(5, dtype=float)
        noisy = kernels.laplace_perturb(weights, 2.0, Rng(3))
        expected = weights + Rng(3).laplace_vector(2.0, 5)
        assert np.array_equal(noisy, expected)

    def test_clamp(self):
        noisy = kernels.laplace_perturb(
            np.zeros(64), 5.0, Rng(4), clamp_at_zero=True
        )
        assert (noisy >= 0).all()


def test_python_backend_rejects_unknown_vertex():
    graph = generators.path_graph(3)
    backend = get_backend("python")
    from repro.exceptions import VertexNotFoundError

    with pytest.raises(VertexNotFoundError):
        backend.sssp(graph, "missing")
