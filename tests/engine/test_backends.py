"""Backend registry, auto-selection, and public-API threading."""

from __future__ import annotations

import pytest

from repro import Rng
from repro.algorithms.shortest_paths import all_pairs_dijkstra
from repro.engine import backends
from repro.engine.backends import (
    APSP_NUMPY_MIN_VERTICES,
    SSSP_NUMPY_MIN_EDGES,
    EngineBackend,
    auto_select,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.exceptions import EngineError
from repro.graphs import generators


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ("numpy", "python")
        assert get_backend("python").name == "python"
        assert get_backend("numpy").name == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(EngineError):
            get_backend("cuda")

    def test_duplicate_registration_raises(self):
        with pytest.raises(EngineError):
            register_backend(backends.PythonBackend())

    def test_nameless_backend_rejected(self):
        with pytest.raises(EngineError):
            register_backend(EngineBackend())

    def test_third_party_backend_plugs_in(self):
        class TracingBackend(backends.PythonBackend):
            name = "tracing-test"
            calls = 0

            def all_pairs(self, graph, sources=None):
                type(self).calls += 1
                return super().all_pairs(graph, sources)

        register_backend(TracingBackend())
        try:
            graph = generators.path_graph(4)
            result = all_pairs_dijkstra(graph, backend="tracing-test")
            assert TracingBackend.calls == 1
            assert result == all_pairs_dijkstra(graph, backend="python")
        finally:
            del backends._REGISTRY["tracing-test"]


class TestAutoSelection:
    def test_all_pairs_threshold(self):
        assert auto_select(APSP_NUMPY_MIN_VERTICES, 10, True) == "numpy"
        assert (
            auto_select(APSP_NUMPY_MIN_VERTICES - 1, 10, True) == "python"
        )

    def test_sssp_threshold(self):
        assert auto_select(10, SSSP_NUMPY_MIN_EDGES, False) == "numpy"
        assert auto_select(10, SSSP_NUMPY_MIN_EDGES - 1, False) == "python"

    def test_resolve_none_and_auto(self):
        big = generators.grid_graph(8, 8)  # 64 >= threshold
        small = generators.path_graph(4)
        assert resolve_backend(None, big, True).name == "numpy"
        assert resolve_backend("auto", big, True).name == "numpy"
        assert resolve_backend(None, small, True).name == "python"

    def test_resolve_instance_passthrough(self):
        instance = get_backend("numpy")
        small = generators.path_graph(4)
        assert resolve_backend(instance, small, True) is instance

    def test_explicit_override_beats_heuristic(self):
        small = generators.path_graph(4)
        assert resolve_backend("numpy", small, True).name == "numpy"


class TestThreading:
    """The backend choice reaches the releases and the service."""

    def test_all_pairs_release_backend_kwarg(self):
        from repro import AllPairsBasicRelease

        graph = generators.assign_random_weights(
            generators.grid_graph(4, 4), Rng(1), low=1.0, high=2.0
        )
        a = AllPairsBasicRelease(graph, eps=1.0, rng=Rng(5), backend="python")
        b = AllPairsBasicRelease(graph, eps=1.0, rng=Rng(5), backend="numpy")
        pairs = list(a.all_released())
        assert pairs == list(b.all_released())
        # Identical exact distances + identical noise stream => the
        # released values agree bit for bit across backends.
        assert all(
            a.all_released()[p] == b.all_released()[p] for p in pairs
        )

    def test_bounded_weight_release_backend_kwarg(self):
        from repro import release_bounded_weight

        graph = generators.assign_random_weights(
            generators.grid_graph(5, 5), Rng(2), low=0.5, high=2.0
        )
        a = release_bounded_weight(
            graph, weight_bound=2.0, eps=1.0, rng=Rng(6), backend="python"
        )
        b = release_bounded_weight(
            graph, weight_bound=2.0, eps=1.0, rng=Rng(6), backend="numpy"
        )
        assert a.all_released() == b.all_released()

    def test_service_backend_is_bit_reproducible(self):
        from repro import DistanceService

        graph = generators.assign_random_weights(
            generators.grid_graph(6, 6), Rng(3), low=1.0, high=3.0
        )
        served = [
            DistanceService(
                graph, 1.0, Rng(7), backend=name
            ).query((0, 0), (5, 5))
            for name in ("python", "numpy")
        ]
        assert served[0] == served[1]

    def test_single_pair_synopsis_backend_kwarg(self):
        from repro.serving import build_single_pair_synopsis

        graph = generators.assign_random_weights(
            generators.grid_graph(4, 5), Rng(4), low=1.0, high=3.0
        )
        pairs = [((0, 0), (3, 4)), ((1, 1), (2, 3)), ((0, 0), (3, 4))]
        a = build_single_pair_synopsis(
            graph, pairs, eps=1.0, rng=Rng(8), backend="python"
        )
        b = build_single_pair_synopsis(
            graph, pairs, eps=1.0, rng=Rng(8), backend="numpy"
        )
        assert a.distance((0, 0), (3, 4)) == b.distance((0, 0), (3, 4))

    def test_replay_rush_hour_backend_kwarg(self):
        from repro.serving import replay_rush_hour

        report = replay_rush_hour(
            Rng(9), rows=5, cols=5, eps=1.0, queries_per_epoch=50,
            backend="numpy",
        )
        assert report.total_queries == 50
