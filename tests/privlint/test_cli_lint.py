"""Tests for the ``lint`` CLI subcommand (exit codes, formats,
baseline workflow, report artifacts)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.privlint import validate_callgraph, validate_lint_report

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def dirty_tree(tmp_path):
    """A throwaway package with exactly one PL2 violation."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        textwrap.dedent(
            '''
            import random


            def draw():
                return random.random()
            '''
        )
    )
    return pkg


class TestExitCodes:
    def test_self_host_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "0 new" in out

    def test_new_findings_exit_one(self, dirty_tree, capsys):
        assert main(["lint", "--paths", str(dirty_tree)]) == 1
        captured = capsys.readouterr()
        assert "PL2" in captured.out
        assert "new finding(s)" in captured.err

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        code = main(["lint", "--paths", str(tmp_path / "gone")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFormats:
    def test_json_output_validates(self, dirty_tree, capsys):
        assert main(
            ["lint", "--paths", str(dirty_tree), "--format", "json"]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        validate_lint_report(document)
        assert document["summary"]["new"] == 1
        assert document["findings"][0]["rule"] == "PL2"
        assert document["findings"][0]["baselined"] is False

    def test_text_findings_carry_location_and_severity(
        self, capsys
    ):
        assert main(["lint", "--paths", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "pl2_rng.py" in out
        assert "PL2 [error]" in out
        assert "PL4 [warning]" in out

    def test_out_writes_artifact(self, dirty_tree, tmp_path, capsys):
        report = tmp_path / "lint-report.json"
        code = main(
            [
                "lint",
                "--paths",
                str(dirty_tree),
                "--format",
                "json",
                "--out",
                str(report),
            ]
        )
        assert code == 1
        document = json.loads(report.read_text())
        validate_lint_report(document)
        # JSON artifacts are not duplicated onto stdout.
        assert capsys.readouterr().out == ""


@pytest.fixture
def stale_tree(tmp_path):
    """A clean package whose only ignore comment suppresses nothing."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        textwrap.dedent(
            '''
            def fine(x):  # privlint: ignore[PL2] stale excuse
                return x
            '''
        )
    )
    return pkg


class TestUnusedIgnoreFlags:
    def test_silent_without_the_flag(self, stale_tree, capsys):
        assert main(["lint", "--paths", str(stale_tree)]) == 0
        captured = capsys.readouterr()
        assert "unused ignore comment" not in captured.err
        assert "ignore[PL2]" not in captured.out

    def test_report_flag_warns_but_passes(self, stale_tree, capsys):
        assert main(
            [
                "lint",
                "--paths",
                str(stale_tree),
                "--report-unused-ignores",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "1 unused ignore comment(s)" in captured.err
        assert "warn-only" in captured.err
        assert "ignore[PL2]" in captured.out

    def test_strict_flag_fails_the_gate(self, stale_tree, capsys):
        assert main(
            [
                "lint",
                "--paths",
                str(stale_tree),
                "--strict-ignores",
            ]
        ) == 1
        captured = capsys.readouterr()
        assert "failing the gate" in captured.err
        assert "ignore[PL2]" in captured.out

    def test_working_ignores_pass_strict(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            textwrap.dedent(
                '''
                import random


                def draw():
                    return random.random()  # privlint: ignore[PL2] fixture
                '''
            )
        )
        assert main(
            ["lint", "--paths", str(pkg), "--strict-ignores"]
        ) == 0
        assert "unused" not in capsys.readouterr().err


class TestCallgraphArtifact:
    def test_artifact_validates(self, dirty_tree, tmp_path, capsys):
        artifact = tmp_path / "callgraph.json"
        main(
            [
                "lint",
                "--paths",
                str(dirty_tree),
                "--callgraph-out",
                str(artifact),
            ]
        )
        capsys.readouterr()
        document = json.loads(artifact.read_text())
        validate_callgraph(document)
        assert document["stats"]["functions"] == 1

    def test_timing_line_on_stderr(self, dirty_tree, capsys):
        main(["lint", "--paths", str(dirty_tree)])
        err = capsys.readouterr().err
        assert "privlint: analyzed 1 files in" in err


class TestBaselineWorkflow:
    def test_update_then_rerun_is_clean(
        self, dirty_tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        assert main(
            [
                "lint",
                "--paths",
                str(dirty_tree),
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        ) == 0
        assert "1 grandfathered finding(s)" in capsys.readouterr().out
        # The same scan against the fresh baseline now passes...
        assert main(
            [
                "lint",
                "--paths",
                str(dirty_tree),
                "--baseline",
                str(baseline),
                "--format",
                "json",
            ]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["new"] == 0
        assert document["summary"]["baselined"] == 1
        assert document["findings"][0]["baselined"] is True

    def test_new_violation_still_fails_against_baseline(
        self, dirty_tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        main(
            [
                "lint",
                "--paths",
                str(dirty_tree),
                "--update-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        (dirty_tree / "worse.py").write_text(
            "import numpy as np\n\n\ndef d():\n"
            "    return np.random.rand()\n"
        )
        capsys.readouterr()
        assert main(
            [
                "lint",
                "--paths",
                str(dirty_tree),
                "--baseline",
                str(baseline),
                "--format",
                "json",
            ]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["new"] == 1
        assert document["summary"]["baselined"] == 1

    def test_malformed_baseline_fails_closed(
        self, dirty_tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        code = main(
            [
                "lint",
                "--paths",
                str(dirty_tree),
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
