"""Spend-before-draw: the guarded twin of pl5_epoch.py (no finding)."""


def fresh_batch(graph, pairs, ledger, eps, rng):
    ledger.spend(eps)
    return rng.laplace_vector(1.0 / eps, len(pairs))
