"""The suppressed twin of pl5_epoch.py (inline ignore silences PL5)."""


def refresh(graph, ledger, eps, rng):  # privlint: ignore[PL5] fixture: proves the ignore syntax silences PL5
    noisy = rng.laplace_vector(1.0 / eps, 4)
    ledger.spend(eps)
    return noisy
