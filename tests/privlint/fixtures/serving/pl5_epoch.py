"""PL5 violation: an epoch entry point draws noise before spending."""


def refresh(graph, ledger, eps, rng):
    noisy = rng.laplace_vector(1.0 / eps, 4)
    ledger.spend(eps)
    return noisy
