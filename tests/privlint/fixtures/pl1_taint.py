"""PL1 fixture: returns a weight-derived value without a noising
sink.  Exactly one finding, on the def line below."""


def leak_total(graph):
    """The sum of private edge weights, released raw — the PL1 bug."""
    return graph.total_weight() * 2.0
