"""PL2 fixture: global-state numpy randomness.  Exactly one finding,
on the np.random call line."""

import numpy as np


def unseeded_noise(values):
    """Draws from numpy's process-global generator — the PL2 bug."""
    return [v + np.random.normal(0.0, 1.0) for v in values]
