"""PL2 fixture twin: the same violation, inline-suppressed."""

import numpy as np


def unseeded_noise(values):
    """Same draw as pl2_rng.unseeded_noise, silenced on its line."""
    return [
        v + np.random.normal(0.0, 1.0)  # privlint: ignore[PL2] fixture
        for v in values
    ]
