"""PL1 fixture twin: the same violation, inline-suppressed."""


def leak_total(graph):  # privlint: ignore[PL1] fixture: suppression round-trip
    """Same body as pl1_taint.leak_total, silenced on the def line."""
    return graph.total_weight() * 2.0
