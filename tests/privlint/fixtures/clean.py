"""Negative fixture: disciplined code that every rule must pass.

Exercises the allowed spellings next to each rule's banned ones:
weight reads released through a Laplace sink (PL1), a threaded rng
parameter and a seeded generator (PL2), the monotonic clock for
latency (PL4), and an id-ordered dual-lock acquisition (PL4).
"""

import time

import numpy as np


def release_total(graph, eps, rng):
    """A weight read that leaves through a noising sink."""
    return graph.total_weight() + rng.laplace(1.0 / eps)


def seeded_stream(seed):
    """Explicitly seeded generators are reproducible and allowed."""
    return np.random.default_rng(seed)


def timed(fn):
    """Latency from the monotonic clock, the blessed spelling."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def merge_counters(left, right):
    """Dual-lock acquisition ordered by id() cannot deadlock."""
    first, second = sorted((left, right), key=id)
    with first._lock, second._lock:
        left.count += right.count
    return left
