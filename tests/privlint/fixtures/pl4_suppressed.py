"""PL4 fixture twin: the same violation, inline-suppressed."""

import time


def stamp_release(values):
    """Same read as pl4_clock.stamp_release, silenced on its line."""
    ts = time.time()  # privlint: ignore[PL4] fixture: observational
    return {"released": list(values), "ts": ts}
