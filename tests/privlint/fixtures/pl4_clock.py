"""PL4 fixture: a wall-clock read feeding a returned value.  Exactly
one finding, on the time.time() call line."""

import time


def stamp_release(values):
    """Wall-clock state in a deterministic output — the PL4 bug."""
    return {"released": list(values), "ts": time.time()}
