"""PL3 fixture twin: the same violation, inline-suppressed."""

from repro.serving.ledger import BudgetLedger  # privlint: ignore[PL3] fixture


def watch(ledger: BudgetLedger) -> float:
    """Same import as pl3_import, silenced on the import line."""
    return ledger.remaining_eps()
