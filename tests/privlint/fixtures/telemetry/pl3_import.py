"""PL3 fixture: a telemetry module importing a ledger module.
Exactly one finding, on the import line."""

from repro.serving.ledger import BudgetLedger


def watch(ledger: BudgetLedger) -> float:
    """Telemetry reaching into the serving layer — the PL3 bug."""
    return ledger.remaining_eps()
