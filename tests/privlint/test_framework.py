"""Framework tests: suppression parsing, baseline round-trips, the
fail-closed ``repro-lint`` report reader, and the scan-set defaults."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.exceptions import LintError
from repro.privlint import (
    DEFAULT_BASELINE_PATH,
    Finding,
    LintResult,
    default_package_root,
    finding_from_dict,
    iter_source_files,
    lint_document,
    load_baseline,
    parse_suppressions,
    render_text,
    run_lint,
    save_baseline,
    validate_lint_report,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_single_rule(self):
        table = parse_suppressions(
            "x = 1  # privlint: ignore[PL4] justification\n"
        )
        assert table == {1: frozenset({"PL4"})}

    def test_multiple_rules_and_star(self):
        table = parse_suppressions(
            "a = 1  # privlint: ignore[PL1, PL2]\n"
            "b = 2\n"
            "c = 3  # privlint: ignore[*] everything\n"
        )
        assert table[1] == frozenset({"PL1", "PL2"})
        assert 2 not in table
        assert table[3] == frozenset({"*"})

    def test_docstring_mention_does_not_suppress(self):
        table = parse_suppressions(
            '"""Write # privlint: ignore[PL1] on the line."""\n'
            "x = 1\n"
        )
        assert table == {}

    @pytest.mark.parametrize(
        "bad",
        [
            "x = 1  # privlint: ignore[]\n",
            "x = 1  # privlint: ignore[pl4]\n",
            "x = 1  # privlint: ignore[PL4; PL1]\n",
        ],
    )
    def test_malformed_lists_fail_closed(self, bad):
        with pytest.raises(LintError):
            parse_suppressions(bad, "mod.py")


class TestFinding:
    def test_round_trip(self):
        finding = Finding("PL1", "repro/x.py", 3, "message", "warning")
        assert finding_from_dict(finding.as_dict()) == finding

    def test_rejects_unknown_severity(self):
        with pytest.raises(LintError):
            Finding("PL1", "x.py", 1, "m", severity="fatal")

    @pytest.mark.parametrize(
        "entry",
        [
            "not a dict",
            {"rule": "PL1", "path": "x.py"},
            {"rule": "PL1", "path": "x.py", "line": "NaN..", "message": ""},
        ],
    )
    def test_malformed_entries_fail_closed(self, entry):
        with pytest.raises(LintError):
            finding_from_dict(entry)


class TestBaseline:
    def test_round_trip_silences_grandfathered(self, tmp_path):
        result = run_lint([FIXTURES], package_root=FIXTURES)
        assert result.findings
        baseline_path = tmp_path / "baseline.json"
        count = save_baseline(baseline_path, result.findings)
        assert count == len(result.findings)
        baseline = load_baseline(baseline_path)
        document = lint_document(result, baseline)
        assert document["summary"]["new"] == 0
        assert document["summary"]["baselined"] == count
        # Every finding is still listed, marked baselined.
        assert all(e["baselined"] for e in document["findings"])

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_baseline_matching_ignores_line_drift(self, tmp_path):
        finding = Finding("PL1", "repro/x.py", 10, "message")
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, [finding])
        moved = Finding("PL1", "repro/x.py", 99, "message")
        assert moved.key in load_baseline(baseline_path)

    @pytest.mark.parametrize(
        "text",
        [
            "not json{",
            json.dumps({"format": "wrong", "version": 1, "entries": []}),
            json.dumps(
                {"format": "repro-lint-baseline", "version": 99,
                 "entries": []}
            ),
            json.dumps(
                {"format": "repro-lint-baseline", "version": 1}
            ),
            json.dumps(
                {"format": "repro-lint-baseline", "version": 1,
                 "entries": [{"rule": "PL1"}]}
            ),
        ],
    )
    def test_malformed_baselines_fail_closed(self, tmp_path, text):
        path = tmp_path / "baseline.json"
        path.write_text(text)
        with pytest.raises(LintError):
            load_baseline(path)

    def test_duplicate_findings_each_get_a_slot(self, tmp_path):
        # Two occurrences of the same (rule, path, message) no longer
        # collapse into one baseline slot.
        first = Finding("PL2", "repro/x.py", 3, "same message")
        second = Finding("PL2", "repro/x.py", 9, "same message")
        path = tmp_path / "baseline.json"
        save_baseline(path, [first, second])
        assert load_baseline(path) == {first.key: 2}

    def test_count_growth_fails_the_gate(self):
        # A baseline allowing one occurrence does not silence two.
        first = Finding("PL2", "repro/x.py", 3, "same message")
        moved = Finding("PL2", "repro/x.py", 43, "same message")
        document = lint_document(
            LintResult(
                findings=(first, moved),
                suppressed=0,
                files=("repro/x.py",),
            ),
            {first.key: 1},
        )
        assert document["summary"]["baselined"] == 1
        assert document["summary"]["new"] == 1
        assert [e["baselined"] for e in document["findings"]] == [
            True,
            False,
        ]

    def test_version_one_baseline_reads_with_count_one(
        self, tmp_path
    ):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-lint-baseline",
                    "version": 1,
                    "entries": [
                        {
                            "rule": "PL2",
                            "path": "repro/x.py",
                            "message": "m",
                        }
                    ],
                }
            )
        )
        assert load_baseline(path) == {("PL2", "repro/x.py", "m"): 1}

    @pytest.mark.parametrize("count", [0, -1, True, "2", 1.5])
    def test_bad_counts_fail_closed(self, tmp_path, count):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-lint-baseline",
                    "version": 2,
                    "entries": [
                        {
                            "rule": "PL2",
                            "path": "repro/x.py",
                            "message": "m",
                            "count": count,
                        }
                    ],
                }
            )
        )
        with pytest.raises(LintError):
            load_baseline(path)

    def test_committed_baseline_is_empty(self):
        # The ISSUE's bar: every self-host finding was fixed or
        # inline-justified, so the shipped baseline grandfathers
        # nothing.  If this fails, a finding was baselined instead of
        # fixed — look at the diff of baseline.json.
        assert load_baseline(DEFAULT_BASELINE_PATH) == {}


class TestLintReport:
    def _document(self):
        result = run_lint([FIXTURES], package_root=FIXTURES)
        return lint_document(result)

    def test_document_validates(self):
        document = self._document()
        assert validate_lint_report(document) is document

    def test_json_round_trip_validates(self):
        document = json.loads(json.dumps(self._document()))
        validate_lint_report(document)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("format"),
            lambda d: d.__setitem__("format", "repro-profile"),
            lambda d: d.__setitem__("version", 99),
            lambda d: d.pop("findings"),
            lambda d: d["findings"][0].pop("baselined"),
            lambda d: d["findings"][0].pop("rule"),
            lambda d: d.pop("summary"),
            lambda d: d["summary"].__setitem__("new", 0xBAD),
            lambda d: d["summary"].pop("suppressed"),
        ],
    )
    def test_fail_closed(self, mutate):
        document = self._document()
        mutate(document)
        with pytest.raises(LintError):
            validate_lint_report(document)

    def test_not_a_dict_fails(self):
        with pytest.raises(LintError):
            validate_lint_report([1, 2, 3])

    def test_render_text_summary_line(self):
        document = self._document()
        text = render_text(document)
        assert "pl1_taint.py:5: PL1 [error]" in text
        assert text.rstrip().endswith(
            "(s) (5 new, 0 baselined, 5 suppressed, "
            "0 unused ignore(s))"
        )


class TestUnusedIgnores:
    def test_dead_suppression_is_reported(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def fine(x):  # privlint: ignore[PL2] stale excuse
                    return x
                '''
            }
        )
        assert not result.findings
        assert len(result.unused_ignores) == 1
        unused = result.unused_ignores[0]
        assert unused.line == 2
        assert unused.rules == ("PL2",)
        assert "mod.py" in unused.path
        assert "PL2" in unused.render()

    def test_working_suppression_is_not_reported(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                import random


                def draw():
                    return random.random()  # privlint: ignore[PL2] fixture
                '''
            }
        )
        assert not result.findings
        assert result.suppressed == 1
        assert result.unused_ignores == ()

    def test_document_carries_unused_ignores(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def fine(x):  # privlint: ignore[PL4] stale
                    return x
                '''
            }
        )
        document = lint_document(result)
        assert document["summary"]["unused_ignores"] == 1
        [entry] = document["unused_ignores"]
        assert entry["rules"] == ["PL4"]
        validate_lint_report(document)
        # The rendering only surfaces them when asked.
        assert "unused" in render_text(document)
        assert "stale" not in render_text(document)
        assert "ignore[PL4]" in render_text(
            document, show_unused_ignores=True
        )

    def test_self_host_has_no_dead_ignores(self):
        # Every inline ignore in the shipped package must still be
        # doing work; delete them when the code moves on.
        assert run_lint().unused_ignores == ()


class TestScanSet:
    def test_default_scan_matches_src_repro_exactly(self):
        """Regression: the default scan set is precisely the installed
        package's source files — nothing skipped, nothing extra."""
        package_root = default_package_root()
        expected = {
            p
            for p in package_root.rglob("*.py")
            if "tests" not in p.relative_to(package_root).parts[:-1]
            and "__pycache__" not in p.parts
        }
        assert set(iter_source_files([package_root])) == expected
        # And the default package root is the imported repro package.
        assert package_root == Path(repro.__file__).resolve().parent

    def test_scanned_files_cover_every_module(self):
        result = run_lint()
        assert len(result.files) == len(
            set(iter_source_files([default_package_root()]))
        )
        assert "repro/privlint/rules.py" in result.files

    def test_tests_directories_are_excluded(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "tests").mkdir()
        (tmp_path / "pkg" / "tests" / "test_mod.py").write_text(
            "import random\nrandom.seed(0)\n"
        )
        files = iter_source_files([tmp_path])
        assert [p.name for p in files] == ["mod.py"]

    def test_explicit_file_paths_are_honoured(self, tmp_path):
        target = tmp_path / "tests" / "fixture.py"
        target.parent.mkdir()
        target.write_text("x = 1\n")
        # A directly named file is linted even under a tests/ dir.
        assert iter_source_files([target]) == [target.resolve()]

    def test_missing_path_fails_closed(self, tmp_path):
        with pytest.raises(LintError):
            iter_source_files([tmp_path / "nope"])

    def test_unparseable_file_fails_closed(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(LintError):
            run_lint([tmp_path], package_root=tmp_path)
