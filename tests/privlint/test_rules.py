"""Rule-by-rule tests for the PL1-PL5 families.

The committed golden-file fixtures under ``fixtures/`` violate each
rule exactly once (with an inline-suppressed twin per rule); the
synthetic-tree tests pin down each rule's sub-checks and the allowed
spellings next to them.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.privlint import (
    PL1WeightTaint,
    PL5BudgetHygiene,
    run_lint,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _by_rule(result):
    grouped = {}
    for finding in result.findings:
        grouped.setdefault(finding.rule, []).append(finding)
    return grouped


class TestGoldenFixtures:
    """Each rule fires exactly once on its fixture and never on the
    clean module; each suppressed twin is silenced."""

    def test_exactly_one_finding_per_rule(self, fixtures_result):
        grouped = _by_rule(fixtures_result)
        assert sorted(grouped) == ["PL1", "PL2", "PL3", "PL4", "PL5"]
        for rule, findings in grouped.items():
            assert len(findings) == 1, (rule, findings)

    def test_findings_point_at_the_violation_files(
        self, fixtures_result
    ):
        paths = {f.rule: f.path for f in fixtures_result.findings}
        assert paths == {
            "PL1": "fixtures/pl1_taint.py",
            "PL2": "fixtures/pl2_rng.py",
            "PL3": "fixtures/telemetry/pl3_import.py",
            "PL4": "fixtures/pl4_clock.py",
            "PL5": "fixtures/serving/pl5_epoch.py",
        }

    def test_each_rule_has_a_suppressed_twin(self, fixtures_result):
        # One suppression per rule family: the twins prove the inline
        # ignore syntax silences every rule.
        assert fixtures_result.suppressed == 5

    def test_clean_module_passes(self, fixtures_result):
        assert not any(
            "clean.py" in f.path for f in fixtures_result.findings
        )

    def test_severities(self, fixtures_result):
        severities = {
            f.rule: f.severity for f in fixtures_result.findings
        }
        assert severities["PL1"] == "error"
        assert severities["PL4"] == "warning"
        assert severities["PL5"] == "error"

    def test_pl5_clean_twin_passes(self, fixtures_result):
        assert not any(
            "pl5_clean.py" in f.path for f in fixtures_result.findings
        )


class TestPL1:
    def test_serialization_escape_counts(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                import json

                def dump_weights(graph, stream):
                    stream.write(json.dumps(graph.weight_vector()))
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL1"]
        assert "serializes/logs" in result.findings[0].message

    def test_noising_sink_clears_the_read(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def release(graph, eps, rng):
                    return graph.total_weight() + rng.laplace(1.0 / eps)
                '''
            }
        )
        assert not result.findings

    def test_ledger_spend_is_a_sink(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def epoch(graph, ledger, eps):
                    ledger.spend(eps, graph.weight_vector().size)
                    return graph.total_weight()
                '''
            }
        )
        assert not result.findings

    def test_read_without_escape_passes(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def validate(graph):
                    for w in graph.weight_vector():
                        assert w >= 0.0
                '''
            }
        )
        assert not result.findings

    def test_engine_kernels_no_longer_allowlisted(self, tmp_path):
        # The call-graph pass replaced the broad engine/algorithms
        # allowlist: a caller-less kernel that returns raw weight
        # state now fires, and gaining a noising caller exonerates
        # it — no allowlist entry required either way.
        (tmp_path / "repro" / "engine").mkdir(parents=True)
        kernel = tmp_path / "repro" / "engine" / "kernels.py"
        kernel.write_text(
            "def exact(csr):\n    return csr.weights.sum()\n"
        )
        result = run_lint(
            [tmp_path], package_root=tmp_path / "repro"
        )
        assert [f.rule for f in result.findings] == ["PL1"]
        assert "repro/engine/kernels.py" == result.findings[0].path
        # A noising caller in another module clears the kernel: the
        # raw value never leaves the mechanism boundary.
        release = tmp_path / "repro" / "engine" / "release.py"
        release.write_text(
            "from repro.engine.kernels import exact\n"
            "\n"
            "\n"
            "def released(csr, eps, rng):\n"
            "    return exact(csr) + rng.laplace(1.0 / eps)\n"
        )
        result = run_lint(
            [tmp_path], package_root=tmp_path / "repro"
        )
        assert not result.findings

    def test_allowlist_still_trusts_listed_modules(self, tmp_path):
        (tmp_path / "repro" / "graphs").mkdir(parents=True)
        module = tmp_path / "repro" / "graphs" / "loader.py"
        module.write_text(
            "def raw(graph):\n    return graph.total_weight()\n"
        )
        result = run_lint(
            [tmp_path], package_root=tmp_path / "repro"
        )
        assert not result.findings
        # The same function outside the allowlist fires.
        custom = PL1WeightTaint(allowlist=())
        result = run_lint(
            [tmp_path],
            package_root=tmp_path / "repro",
            rules=[custom],
        )
        assert [f.rule for f in result.findings] == ["PL1"]

    def test_nested_function_blamed_not_parent(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def outer():
                    def inner(graph):
                        return graph.total_weight()
                    return inner
                '''
            }
        )
        assert len(result.findings) == 1
        assert "outer.inner" in result.findings[0].message


class TestPL1Interprocedural:
    """The call-graph pass: taint follows calls, noise absorbs it."""

    def test_helper_noised_by_caller_is_clean(self, lint_tree):
        # The raw-returning helper needs no allowlist entry: its only
        # caller noises the value before it escapes.
        result = lint_tree(
            {
                "mod.py": '''
                def _total(graph):
                    return graph.total_weight()

                def release(graph, eps, rng):
                    return _total(graph) + rng.laplace(1.0 / eps)
                '''
            }
        )
        assert not result.findings

    def test_two_hop_chain_leaks_and_names_the_chain(
        self, lint_tree
    ):
        result = lint_tree(
            {
                "mod.py": '''
                def _total(graph):
                    return graph.total_weight()

                def summarize(graph):
                    return _total(graph)

                def report(graph):
                    print(summarize(graph))
                '''
            }
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "PL1"
        # Blame lands on the reader, with the escape route spelled
        # out caller-ward.
        assert "_total" in finding.message
        assert "call chain" in finding.message
        assert "summarize" in finding.message
        assert "report" in finding.message

    def test_cross_module_call_via_import_alias(self, lint_tree):
        result = lint_tree(
            {
                "pkg/__init__.py": "",
                "pkg/helper.py": '''
                def raw_total(graph):
                    return graph.total_weight()
                ''',
                "pkg/report.py": '''
                from . import helper

                def emit(graph):
                    print(helper.raw_total(graph))
                ''',
            }
        )
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.path.endswith("pkg/helper.py")
        assert "raw_total" in finding.message
        assert "emit" in finding.message

    def test_recursive_cycle_terminates(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def walk(graph, n):
                    if n == 0:
                        return graph.total_weight()
                    return walk(graph, n - 1)

                def show(graph):
                    print(walk(graph, 3))
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL1"]
        assert "walk" in result.findings[0].message

    def test_midchain_ignore_absorbs_the_taint(self, lint_tree):
        # Trusting the boundary function silences the whole chain:
        # trusted nodes absorb taint instead of forwarding it.
        result = lint_tree(
            {
                "mod.py": '''
                def _total(graph):
                    return graph.total_weight()

                def summarize(graph):  # privlint: ignore[PL1] released upstream
                    return _total(graph)

                def report(graph):
                    print(summarize(graph))
                '''
            }
        )
        assert not result.findings
        # The mid-chain ignore did real work, so it is not reported
        # as a dead suppression.
        assert result.unused_ignores == ()


class TestPL5:
    def test_draw_without_spend_fires(self, lint_tree):
        result = lint_tree(
            {
                "serving/epoch.py": '''
                def refresh(graph, eps, rng):
                    return rng.laplace(1.0 / eps)
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL5"]
        finding = result.findings[0]
        assert finding.severity == "error"
        assert "spend first, release second" in finding.message

    def test_spend_before_draw_passes(self, lint_tree):
        result = lint_tree(
            {
                "serving/epoch.py": '''
                def refresh(graph, ledger, eps, rng):
                    ledger.spend(eps)
                    return rng.laplace(1.0 / eps)
                '''
            }
        )
        assert not result.findings

    def test_draw_then_spend_still_fires(self, lint_tree):
        # Program order matters: charging the ledger after the draw
        # is not budget hygiene.
        result = lint_tree(
            {
                "serving/epoch.py": '''
                def refresh(graph, ledger, eps, rng):
                    noisy = rng.laplace(1.0 / eps)
                    ledger.spend(eps)
                    return noisy
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL5"]

    def test_transitive_spend_guards_the_draw(self, lint_tree):
        result = lint_tree(
            {
                "serving/epoch.py": '''
                def _charge(ledger, eps):
                    ledger.spend(eps)

                def refresh(graph, ledger, eps, rng):
                    _charge(ledger, eps)
                    return rng.laplace(1.0 / eps)
                '''
            }
        )
        assert not result.findings

    def test_unguarded_callee_propagates_to_entry(self, lint_tree):
        # The entry point inherits the obligation even when the draw
        # is buried in a helper.
        result = lint_tree(
            {
                "serving/epoch.py": '''
                def _draw_batch(eps, rng):
                    return rng.laplace(1.0 / eps)

                def refresh(graph, eps, rng):
                    return _draw_batch(eps, rng)
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL5"]
        assert "_draw_batch" in result.findings[0].message

    def test_pure_distribution_helpers_are_not_draws(self, lint_tree):
        result = lint_tree(
            {
                "serving/epoch.py": '''
                def refresh(graph, eps, q):
                    return laplace_quantile(q, 1.0 / eps)
                '''
            }
        )
        assert not result.findings

    def test_non_entry_helpers_are_not_flagged(self, lint_tree):
        result = lint_tree(
            {
                "serving/epoch.py": '''
                def estimate(graph, eps, rng):
                    return rng.laplace(1.0 / eps)
                '''
            }
        )
        assert not result.findings

    def test_rule_only_applies_to_serving_modules(self, lint_tree):
        result = lint_tree(
            {
                "core/epoch.py": '''
                def refresh(graph, eps, rng):
                    return rng.laplace(1.0 / eps)
                '''
            }
        )
        assert not result.findings

    def test_release_primitives_are_exempt(self, lint_tree):
        tree = {
            "serving/synopsis.py": '''
            def build_synopsis(graph, eps, rng):
                return rng.laplace(1.0 / eps)
            '''
        }
        result = lint_tree(tree)
        assert [f.rule for f in result.findings] == ["PL5"]
        # Declared a release primitive, the builder's obligation
        # falls on its callers instead.
        exempt = PL5BudgetHygiene(
            primitive_globs=("*serving/synopsis.py",)
        )
        result = lint_tree(tree, rules=[exempt])
        assert not result.findings


class TestPL2:
    @pytest.mark.parametrize(
        "call",
        [
            "random.random()",
            "random.seed(0)",
            "np.random.rand(4)",
            "np.random.seed(7)",
        ],
    )
    def test_global_state_calls_fire(self, lint_tree, call):
        result = lint_tree(
            {
                "mod.py": f'''
                import random

                import numpy as np

                def draw():
                    return {call}
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL2"]

    def test_bare_default_rng_fires(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                import numpy as np

                def fresh():
                    return np.random.default_rng()
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL2"]
        assert "OS entropy" in result.findings[0].message

    def test_seeded_default_rng_passes(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                import numpy as np

                def fresh(seed):
                    return np.random.default_rng(seed)
                '''
            }
        )
        assert not result.findings

    def test_time_seeded_generator_fires(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                import time

                import numpy as np

                def sneaky():
                    return np.random.default_rng(int(time.time()))
                '''
            }
        )
        rules = sorted(f.rule for f in result.findings)
        # Both the wall-clock read (PL4) and the time-seeded
        # generator (PL2) fire on this line.
        assert rules == ["PL2", "PL4"]

    def test_draw_without_rng_parameter_fires(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                GLOBAL_RNG = object()

                def noisy(value):
                    gen = GLOBAL_RNG
                    return value + gen.laplace(1.0)
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL2"]
        assert "thread the generator" in result.findings[0].message

    def test_threaded_rng_parameter_passes(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def noisy(value, rng):
                    return value + rng.laplace(1.0)

                def renamed(value, generator):
                    return value + generator.laplace(1.0)
                '''
            }
        )
        assert not result.findings

    def test_closure_inherits_threaded_rng(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def make_sampler(rng):
                    def sample(value):
                        return value + rng.laplace(1.0)
                    return sample
                '''
            }
        )
        assert not result.findings

    def test_constructor_threaded_attribute_passes(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                class Mechanism:
                    def __init__(self, rng):
                        self._rng = rng

                    def release(self, value):
                        return value + self._rng.laplace(1.0)
                '''
            }
        )
        assert not result.findings

    def test_local_variable_shadowing_random_passes(self, lint_tree):
        # A local called ``random`` is not the stdlib module; without
        # an import the dotted origin never resolves.
        result = lint_tree(
            {
                "mod.py": '''
                def pick(random):
                    return random.random()
                '''
            }
        )
        assert not result.findings


class TestPL3:
    def test_relative_import_resolves_and_fires(self, lint_tree):
        result = lint_tree(
            {
                "repro/__init__.py": "",
                "repro/telemetry/__init__.py": "",
                "repro/telemetry/bad.py": '''
                from ..rng import Rng
                ''',
            }
        )
        assert [f.rule for f in result.findings] == ["PL3"]
        assert "rng" in result.findings[0].message

    def test_rng_parameter_in_signature_fires(self, lint_tree):
        result = lint_tree(
            {
                "telemetry/probe.py": '''
                def observe(value, rng):
                    return value
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL3"]
        assert "purely observational" in result.findings[0].message

    def test_telemetry_internal_imports_pass(self, lint_tree):
        result = lint_tree(
            {
                "repro/telemetry/__init__.py": "",
                "repro/telemetry/ok.py": '''
                from ..exceptions import TelemetryError
                from .registry import MetricsRegistry
                ''',
            }
        )
        assert not result.findings

    def test_rule_only_applies_to_telemetry_modules(self, lint_tree):
        result = lint_tree(
            {
                "serving/ok.py": '''
                from repro.dp.mechanisms import LaplaceMechanism

                def release(value, rng):
                    return value + rng.laplace(1.0)
                '''
            }
        )
        assert not result.findings


class TestPL4:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\n\n\ndef f():\n    return time.time()",
            "import datetime\n\n\ndef f():\n"
            "    return datetime.datetime.now()",
            "from datetime import datetime\n\n\ndef f():\n"
            "    return datetime.now()",
        ],
    )
    def test_wall_clock_reads_fire(self, lint_tree, snippet):
        result = lint_tree({"mod.py": snippet})
        assert [f.rule for f in result.findings] == ["PL4"]

    def test_monotonic_clock_passes(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                import time

                def timed(fn):
                    start = time.perf_counter()
                    fn()
                    return time.perf_counter() - start
                '''
            }
        )
        assert not result.findings

    def test_unordered_dual_lock_fires(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def merge(a, b):
                    with a._lock, b._lock:
                        a.count += b.count
                '''
            }
        )
        assert [f.rule for f in result.findings] == ["PL4"]
        assert "id-ordering" in result.findings[0].message

    def test_id_ordered_dual_lock_passes(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def merge(a, b):
                    first, second = sorted((a, b), key=id)
                    with first._lock, second._lock:
                        a.count += b.count
                '''
            }
        )
        assert not result.findings

    def test_single_lock_with_passes(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": '''
                def bump(self):
                    with self._lock:
                        self.count += 1
                '''
            }
        )
        assert not result.findings


class TestSelfHost:
    """The acceptance criterion: the shipped package lints clean."""

    def test_src_repro_is_clean(self):
        result = run_lint()
        assert result.findings == (), [
            f.render() for f in result.findings
        ]

    def test_fixture_root_is_where_we_think(self):
        assert (FIXTURES / "pl1_taint.py").exists()

    def test_self_host_stays_fast(self):
        # The ISSUE's perf bar: the interprocedural pass keeps the
        # full self-host scan (call graph + fixpoints) under 5s.
        start = time.perf_counter()
        run_lint()
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0, f"self-host lint took {elapsed:.2f}s"
