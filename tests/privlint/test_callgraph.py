"""Tests for the project call graph: resolution kinds, per-function
summary bits, and the versioned ``repro-callgraph`` document."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import LintError
from repro.privlint import (
    CALLGRAPH_FORMAT,
    CALLGRAPH_VERSION,
    callgraph_document,
    run_lint,
    validate_callgraph,
)


def _graph(lint_tree, files):
    return lint_tree(files).context.callgraph


def _node(graph, qualname):
    hits = [
        n for n in graph.nodes.values() if n.qualname == qualname
    ]
    assert len(hits) == 1, (qualname, sorted(graph.nodes))
    return hits[0]


def _site(node, name):
    hits = [s for s in node.calls if s.name == name]
    assert len(hits) == 1, (name, node.calls)
    return hits[0]


class TestResolution:
    def test_local_bare_name(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                def helper(x):
                    return x

                def caller(x):
                    return helper(x)
                '''
            },
        )
        site = _site(_node(graph, "caller"), "helper")
        assert site.kind == "local"
        assert site.targets == (_node(graph, "helper").node_id,)
        assert graph.callers_of(
            _node(graph, "helper").node_id
        ) == (_node(graph, "caller").node_id,)

    def test_local_class_resolves_to_constructor(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                class Thing:
                    def __init__(self, x):
                        self.x = x

                def make(x):
                    return Thing(x)
                '''
            },
        )
        site = _site(_node(graph, "make"), "Thing")
        assert site.kind == "local"
        assert site.targets == (
            _node(graph, "Thing.__init__").node_id,
        )

    def test_self_method(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                class Service:
                    def _inner(self):
                        return 1

                    def outer(self):
                        return self._inner()
                '''
            },
        )
        site = _site(_node(graph, "Service.outer"), "_inner")
        assert site.kind == "self"
        assert site.targets == (
            _node(graph, "Service._inner").node_id,
        )

    def test_import_alias_cross_module(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "pkg/__init__.py": "",
                "pkg/helper.py": '''
                def compute(x):
                    return x
                ''',
                "pkg/caller.py": '''
                from . import helper

                def run(x):
                    return helper.compute(x)
                ''',
            },
        )
        site = _site(_node(graph, "run"), "compute")
        assert site.kind == "import"
        assert site.targets == (_node(graph, "compute").node_id,)

    def test_reexport_hop_through_package_init(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "pkg/__init__.py": '''
                from .impl import compute
                ''',
                "pkg/impl.py": '''
                def compute(x):
                    return x
                ''',
                "pkg/consumer.py": '''
                from . import compute

                def run(x):
                    return compute(x)
                ''',
            },
        )
        site = _site(_node(graph, "run"), "compute")
        assert site.kind == "import"
        assert site.targets == (_node(graph, "compute").node_id,)

    def test_unknown_receiver_joins_by_method_name(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                class A:
                    def estimate(self):
                        return 1

                class B:
                    def estimate(self):
                        return 2

                def run(backend):
                    return backend.estimate()
                '''
            },
        )
        site = _site(_node(graph, "run"), "estimate")
        assert site.kind == "join"
        assert set(site.targets) == {
            _node(graph, "A.estimate").node_id,
            _node(graph, "B.estimate").node_id,
        }

    def test_unknown_callee_is_opaque(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                def run(x):
                    return external(x)
                '''
            },
        )
        site = _site(_node(graph, "run"), "external")
        assert site.kind == "opaque"
        assert site.targets == ()

    def test_dunder_calls_never_join(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                class A:
                    def __len__(self):
                        return 0

                def run(x):
                    return x.__len__()
                '''
            },
        )
        site = _site(_node(graph, "run"), "__len__")
        assert site.kind == "opaque"
        assert site.targets == ()

    def test_call_sites_kept_in_source_order(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                def a():
                    return 1

                def b():
                    return 2

                def run():
                    x = b()
                    return a() + x
                '''
            },
        )
        assert [s.name for s in _node(graph, "run").calls] == [
            "b",
            "a",
        ]


class TestSummaryBits:
    def test_weight_read_and_return(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "repro/graphs/mod.py": '''
                def total(graph):
                    return graph.total_weight()
                '''
            },
        )
        node = _node(graph, "total")
        assert node.reads == ("total_weight",)
        assert node.reads_weights
        assert node.returns_value
        assert node.escapes
        assert not node.serializes

    def test_serialize_noise_draw_spend_bits(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                def report(value, ledger, eps, rng):
                    ledger.spend(eps)
                    noisy = value + rng.laplace(1.0 / eps)
                    print(noisy)
                    return noisy
                '''
            },
        )
        node = _node(graph, "report")
        assert node.serializes
        assert node.noises
        assert node.draws
        assert node.spends

    def test_pure_laplace_helpers_do_not_draw(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                def bound(q, scale):
                    return laplace_quantile(q, scale)
                '''
            },
        )
        node = _node(graph, "bound")
        assert not node.draws
        # Still a recognized noising-family call for PL1 purposes.
        assert node.noises

    def test_bare_return_none_is_not_a_value(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                def bail(flag):
                    if flag:
                        return
                    return None
                '''
            },
        )
        assert not _node(graph, "bail").returns_value


class TestDocument:
    def _document(self, lint_tree):
        graph = _graph(
            lint_tree,
            {
                "mod.py": '''
                def helper(x):
                    return x

                def caller(x):
                    return helper(x)
                ''',
            },
        )
        return callgraph_document(graph)

    def test_document_validates_and_round_trips(self, lint_tree):
        document = self._document(lint_tree)
        assert document["format"] == CALLGRAPH_FORMAT
        assert document["version"] == CALLGRAPH_VERSION
        assert validate_callgraph(document) is document
        validate_callgraph(json.loads(json.dumps(document)))

    def test_stats_agree_with_functions(self, lint_tree):
        document = self._document(lint_tree)
        stats = document["stats"]
        assert stats["functions"] == len(document["functions"]) == 2
        assert stats["edges"] == 1
        assert stats["call_sites"] == 1
        assert stats["resolved_call_sites"] == 1
        assert stats["modules"] == 1

    def test_self_host_document_validates(self):
        result = run_lint()
        document = callgraph_document(result.context.callgraph)
        validate_callgraph(document)
        # The real package is big enough that an empty graph would
        # mean the builder silently broke.
        assert document["stats"]["functions"] > 500
        assert document["stats"]["edges"] > 1000

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.__setitem__("format", "repro-lint"),
            lambda d: d.__setitem__("version", 99),
            lambda d: d.pop("functions"),
            lambda d: d["functions"][0].pop("noises"),
            lambda d: d["functions"][0].pop("qualname"),
            lambda d: d["functions"][0].pop("calls"),
            lambda d: d["functions"][0]["calls"][0]["targets"]
            .__setitem__(0, "ghost.py::nope"),
            lambda d: d["stats"].__setitem__("functions", 99),
            lambda d: d["stats"].__setitem__("edges", 99),
            lambda d: d.pop("stats"),
        ],
    )
    def test_fail_closed(self, lint_tree, mutate):
        document = self._document(lint_tree)
        mutate(document)
        with pytest.raises(LintError):
            validate_callgraph(document)

    def test_not_a_dict_fails(self):
        with pytest.raises(LintError):
            validate_callgraph(["nope"])
