"""Shared helpers for the privlint analyzer tests."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.privlint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def fixtures_result():
    """One analyzer run over the committed golden-file fixtures."""
    return run_lint([FIXTURES], package_root=FIXTURES)


@pytest.fixture
def lint_tree(tmp_path):
    """Write a {relative_path: source} tree and lint it.

    Sources are dedented; the tree root doubles as the package root so
    display paths are stable relative names.
    """

    def _lint(files, **kwargs):
        for name, source in files.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return run_lint([tmp_path], package_root=tmp_path, **kwargs)

    return _lint
