"""Unit tests for :mod:`repro.graphs.io`."""

from __future__ import annotations

import io

import pytest

from repro import GraphError, WeightedGraph
from repro.graphs import generators
from repro.graphs.io import (
    graph_from_json,
    graph_to_json,
    load_graph,
    read_edge_list,
    save_graph,
    write_edge_list,
)


class TestJsonRoundTrip:
    def test_simple_round_trip(self, triangle):
        restored = graph_from_json(graph_to_json(triangle))
        assert restored.num_vertices == triangle.num_vertices
        assert restored.weights() == triangle.weights()
        assert restored.directed == triangle.directed

    def test_directed_round_trip(self):
        g = WeightedGraph(directed=True)
        g.add_edge("a", "b", 2.5)
        restored = graph_from_json(graph_to_json(g))
        assert restored.directed
        assert restored.has_edge("a", "b")
        assert not restored.has_edge("b", "a")

    def test_tuple_vertices_round_trip(self):
        g = generators.grid_graph(3, 3)
        restored = graph_from_json(graph_to_json(g))
        assert restored.has_edge((0, 0), (0, 1))
        assert restored.weights() == g.weights()

    def test_isolated_vertices_survive(self):
        g = WeightedGraph()
        g.add_vertex("alone")
        restored = graph_from_json(graph_to_json(g))
        assert restored.has_vertex("alone")

    def test_rejects_garbage(self):
        with pytest.raises(GraphError):
            graph_from_json('{"format": "something-else"}')

    def test_rejects_bad_version(self):
        with pytest.raises(GraphError):
            graph_from_json(
                '{"format": "repro-graph", "version": 999, '
                '"directed": false, "vertices": [], "edges": []}'
            )

    def test_unserializable_vertex(self):
        g = WeightedGraph()
        g.add_vertex(frozenset([1]))
        with pytest.raises(GraphError):
            graph_to_json(g)

    def test_file_round_trip(self, tmp_path, triangle):
        path = tmp_path / "graph.json"
        save_graph(triangle, path)
        restored = load_graph(path)
        assert restored.weights() == triangle.weights()


class TestEdgeList:
    def test_round_trip(self, triangle):
        buffer = io.StringIO()
        write_edge_list(triangle, buffer)
        buffer.seek(0)
        restored = read_edge_list(buffer)
        assert restored.weights() == triangle.weights()

    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\n0 1 2.5\n"
        restored = read_edge_list(io.StringIO(text))
        assert restored.weight(0, 1) == 2.5

    def test_bad_line(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("0 1\n"))

    def test_string_vertices(self):
        text = "alpha beta 1.0\n"
        restored = read_edge_list(io.StringIO(text), int_vertices=False)
        assert restored.has_edge("alpha", "beta")

    def test_rejects_tuple_vertices(self):
        g = generators.grid_graph(2, 2)
        with pytest.raises(GraphError):
            write_edge_list(g, io.StringIO())

    def test_rejects_whitespace_labels(self):
        g = WeightedGraph()
        g.add_edge("a b", "c", 1.0)
        with pytest.raises(GraphError):
            write_edge_list(g, io.StringIO())
