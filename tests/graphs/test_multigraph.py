"""Unit tests for :mod:`repro.graphs.multigraph`."""

from __future__ import annotations

import pytest

from repro import EdgeNotFoundError, GraphError, WeightedMultiGraph
from repro.algorithms import dijkstra_path


@pytest.fixture
def parallel_pair() -> WeightedMultiGraph:
    """Two vertices joined by two parallel edges of weights 1 and 5."""
    mg = WeightedMultiGraph()
    mg.add_edge("a", "b", 1.0, key="cheap")
    mg.add_edge("a", "b", 5.0, key="dear")
    return mg


class TestConstruction:
    def test_auto_keys_are_distinct(self):
        mg = WeightedMultiGraph()
        k1 = mg.add_edge(0, 1, 1.0)
        k2 = mg.add_edge(0, 1, 2.0)
        assert k1 != k2
        assert mg.num_edges == 2

    def test_duplicate_key_rejected(self, parallel_pair):
        with pytest.raises(GraphError):
            parallel_pair.add_edge("a", "b", 2.0, key="cheap")

    def test_self_loop_rejected(self):
        mg = WeightedMultiGraph()
        with pytest.raises(GraphError):
            mg.add_edge("a", "a")

    def test_counts(self, parallel_pair):
        assert parallel_pair.num_vertices == 2
        assert parallel_pair.num_edges == 2

    def test_copy_preserves_keys_and_weights(self, parallel_pair):
        clone = parallel_pair.copy()
        assert clone.weight("cheap") == 1.0
        clone.set_weight("cheap", 9.0)
        assert parallel_pair.weight("cheap") == 1.0

    def test_copy_auto_key_continuation(self):
        mg = WeightedMultiGraph()
        mg.add_edge(0, 1)
        clone = mg.copy()
        new_key = clone.add_edge(0, 1)
        assert new_key not in (0,) or new_key != 0  # fresh key


class TestQueries:
    def test_endpoints_and_weight(self, parallel_pair):
        assert parallel_pair.endpoints("cheap") == ("a", "b")
        assert parallel_pair.weight("dear") == 5.0

    def test_missing_key(self, parallel_pair):
        with pytest.raises(EdgeNotFoundError):
            parallel_pair.weight("nope")
        with pytest.raises(EdgeNotFoundError):
            parallel_pair.endpoints("nope")

    def test_parallel_keys(self, parallel_pair):
        keys = parallel_pair.parallel_keys("a", "b")
        assert set(keys) == {"cheap", "dear"}

    def test_weights_and_with_weights(self, parallel_pair):
        reweighted = parallel_pair.with_weights({"cheap": 10.0})
        assert reweighted.weight("cheap") == 10.0
        assert parallel_pair.weight("cheap") == 1.0

    def test_path_weight(self, parallel_pair):
        assert parallel_pair.path_weight(["cheap", "dear"]) == 6.0

    def test_neighbors_distinct(self, parallel_pair):
        assert list(parallel_pair.neighbors("a")) == ["b"]


class TestMinWeightProjection:
    def test_keeps_lightest_edge(self, parallel_pair):
        simple, chosen = parallel_pair.min_weight_projection()
        assert simple.num_edges == 1
        assert simple.weight("a", "b") == 1.0
        key = simple.edge_key("a", "b")
        assert chosen[key] == "cheap"

    def test_shortest_path_uses_projection(self):
        mg = WeightedMultiGraph()
        mg.add_edge(0, 1, 3.0, key="slow1")
        mg.add_edge(0, 1, 1.0, key="fast1")
        mg.add_edge(1, 2, 2.0, key="slow2")
        mg.add_edge(1, 2, 0.5, key="fast2")
        simple, chosen = mg.min_weight_projection()
        path, weight = dijkstra_path(simple, 0, 2)
        assert path == [0, 1, 2]
        assert weight == 1.5
        keys = [chosen[simple.edge_key(u, v)] for u, v in zip(path, path[1:])]
        assert keys == ["fast1", "fast2"]


class TestToSimple:
    def test_subdivision_preserves_weights(self, parallel_pair):
        simple, mapping = parallel_pair.to_simple()
        # One direct edge plus one subdivided edge -> 3 edges total.
        assert simple.num_edges == 3
        assert simple.num_vertices == 3
        # Each original key maps to a path of total weight equal to the
        # original weight.
        for key in parallel_pair.edge_keys():
            total = sum(simple.weight(u, v) for u, v in mapping[key])
            assert total == parallel_pair.weight(key)

    def test_simple_graph_distances_match(self):
        """The paper's factor-2 remark: the simple conversion preserves
        path weights exactly (only hop counts grow)."""
        mg = WeightedMultiGraph()
        mg.add_edge(0, 1, 2.0)
        mg.add_edge(0, 1, 7.0)
        mg.add_edge(1, 2, 3.0)
        simple, _ = mg.to_simple()
        _, weight = dijkstra_path(simple, 0, 2)
        assert weight == 5.0

    def test_no_parallel_edges_is_identity_shape(self):
        mg = WeightedMultiGraph()
        mg.add_edge(0, 1, 1.0)
        mg.add_edge(1, 2, 2.0)
        simple, mapping = mg.to_simple()
        assert simple.num_vertices == 3
        assert simple.num_edges == 2
