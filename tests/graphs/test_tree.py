"""Unit tests for :mod:`repro.graphs.tree` (including the Figure 1
partition invariants)."""

from __future__ import annotations

import pytest

from repro import NotATreeError, Rng, VertexNotFoundError, WeightedGraph
from repro.graphs import RootedTree, generators


class TestConstruction:
    def test_rejects_directed(self):
        g = WeightedGraph(directed=True)
        g.add_edge(0, 1)
        with pytest.raises(NotATreeError):
            RootedTree(g, 0)

    def test_rejects_cycle(self):
        g = generators.cycle_graph(4)
        with pytest.raises(NotATreeError):
            RootedTree(g, 0)

    def test_rejects_disconnected_forest(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        g.add_vertex(4)
        with pytest.raises(NotATreeError):
            RootedTree(g, 0)

    def test_rejects_missing_root(self, small_tree):
        with pytest.raises(VertexNotFoundError):
            RootedTree(small_tree, 99)

    def test_single_vertex_tree(self):
        g = WeightedGraph()
        g.add_vertex("only")
        t = RootedTree(g, "only")
        assert t.num_vertices == 1
        assert t.parent("only") is None
        assert t.splitter() == "only"


class TestStructure:
    def test_parents(self, small_rooted_tree):
        t = small_rooted_tree
        assert t.parent(0) is None
        assert t.parent(3) == 1
        assert t.parent(6) == 5

    def test_children_sets(self, small_rooted_tree):
        t = small_rooted_tree
        assert set(t.children(0)) == {1, 2}
        assert set(t.children(1)) == {3, 4}
        assert t.children(3) == []

    def test_depth(self, small_rooted_tree):
        t = small_rooted_tree
        assert t.depth(0) == 0
        assert t.depth(4) == 2
        assert t.depth(6) == 3

    def test_subtree_sizes(self, small_rooted_tree):
        t = small_rooted_tree
        assert t.subtree_size(0) == 7
        assert t.subtree_size(1) == 3
        assert t.subtree_size(2) == 3
        assert t.subtree_size(6) == 1

    def test_subtree_vertices(self, small_rooted_tree):
        assert set(small_rooted_tree.subtree_vertices(2)) == {2, 5, 6}

    def test_preorder_parents_first(self, small_rooted_tree):
        t = small_rooted_tree
        order = t.preorder()
        position = {v: i for i, v in enumerate(order)}
        for v in order:
            p = t.parent(v)
            if p is not None:
                assert position[p] < position[v]

    def test_is_leaf(self, small_rooted_tree):
        assert small_rooted_tree.is_leaf(6)
        assert not small_rooted_tree.is_leaf(2)

    def test_missing_vertex_queries(self, small_rooted_tree):
        for method in ("parent", "children", "depth", "subtree_size"):
            with pytest.raises(VertexNotFoundError):
                getattr(small_rooted_tree, method)(99)


class TestDistances:
    def test_distance_from_root(self, small_rooted_tree):
        t = small_rooted_tree
        assert t.distance_from_root(0) == 0.0
        assert t.distance_from_root(4) == 5.0  # 1 + 4
        assert t.distance_from_root(6) == 13.0  # 2 + 5 + 6

    def test_pairwise_distance_lca_identity(self, small_rooted_tree):
        t = small_rooted_tree
        # d(3, 4) goes through 1: 3 + 4
        assert t.distance(3, 4) == 7.0
        # d(3, 6) goes through root: 3 + 1 + 2 + 5 + 6
        assert t.distance(3, 6) == 17.0

    def test_distance_symmetry(self, small_rooted_tree):
        t = small_rooted_tree
        assert t.distance(3, 6) == t.distance(6, 3)

    def test_path_endpoints_and_validity(self, small_rooted_tree):
        t = small_rooted_tree
        path = t.path(3, 6)
        assert path[0] == 3 and path[-1] == 6
        assert t.graph.is_path(path)
        assert t.graph.path_weight(path) == t.distance(3, 6)

    def test_path_to_root(self, small_rooted_tree):
        assert small_rooted_tree.path_to_root(6) == [6, 5, 2, 0]


class TestLca:
    def test_lca_basic(self, small_rooted_tree):
        t = small_rooted_tree
        assert t.lca(3, 4) == 1
        assert t.lca(3, 6) == 0
        assert t.lca(5, 6) == 5
        assert t.lca(2, 2) == 2

    def test_ancestor(self, small_rooted_tree):
        t = small_rooted_tree
        assert t.ancestor(6, 0) == 6
        assert t.ancestor(6, 2) == 2
        assert t.ancestor(6, 3) == 0
        with pytest.raises(ValueError):
            t.ancestor(6, 4)

    def test_lca_random_trees_against_naive(self, rng):
        for _ in range(5):
            graph = generators.random_tree(40, rng)
            tree = RootedTree(graph, 0)
            ancestors = {
                v: set(tree.path_to_root(v)) for v in graph.vertices()
            }
            for _ in range(30):
                x = rng.integer(0, 40)
                y = rng.integer(0, 40)
                common = ancestors[x] & ancestors[y]
                naive = max(common, key=tree.depth)
                assert tree.lca(x, y) == naive


class TestSplitter:
    """Figure 1 / Algorithm 1 step 1 invariants."""

    def test_splitter_invariants_random_trees(self, rng):
        for n in (2, 3, 5, 17, 64, 101):
            graph = generators.random_tree(n, rng)
            tree = RootedTree(graph, 0)
            v_star = tree.splitter()
            assert tree.subtree_size(v_star) > n / 2
            for child in tree.children(v_star):
                assert tree.subtree_size(child) <= n / 2

    def test_split_partitions_vertices(self, rng):
        graph = generators.random_tree(50, rng)
        tree = RootedTree(graph, 0)
        v_star = tree.splitter()
        t0, subtrees = tree.split_at(v_star)
        all_parts = [t0] + subtrees
        seen: set = set()
        for part in all_parts:
            assert not (seen & set(part))
            seen |= set(part)
        assert seen == set(graph.vertices())

    def test_split_piece_sizes_at_most_half(self, rng):
        """Every subtree piece T1..Tt has size <= V/2 and T0 has size
        <= ceil(V/2) + small slack (the paper's 'at most half')."""
        for n in (10, 33, 64):
            graph = generators.random_tree(n, rng)
            tree = RootedTree(graph, 0)
            v_star = tree.splitter()
            t0, subtrees = tree.split_at(v_star)
            for part in subtrees:
                assert len(part) <= n / 2
            # |T0| = n - (subtree(v*) - 1) < n/2 + 1
            assert len(t0) <= n // 2 + 1

    def test_splitter_on_path(self):
        graph = generators.path_graph(8)
        tree = RootedTree(graph, 0)
        v_star = tree.splitter()
        assert tree.subtree_size(v_star) > 4

    def test_splitter_on_star(self):
        graph = generators.star_graph(9)
        tree = RootedTree(graph, 1)  # root at a leaf
        assert tree.splitter() == 0  # hub holds all the mass
