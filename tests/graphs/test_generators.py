"""Unit tests for :mod:`repro.graphs.generators`."""

from __future__ import annotations

import pytest

from repro import GraphError
from repro.algorithms import is_connected
from repro.graphs import RootedTree, generators


class TestDeterministicFamilies:
    def test_path_graph(self):
        g = generators.path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(3, 4)
        assert not g.has_edge(0, 4)

    def test_path_graph_single_vertex(self):
        g = generators.path_graph(1)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_path_graph_invalid(self):
        with pytest.raises(GraphError):
            generators.path_graph(0)

    def test_cycle_graph(self):
        g = generators.cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            generators.cycle_graph(2)

    def test_star_graph(self):
        g = generators.star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_complete_graph(self):
        g = generators.complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_grid_graph(self):
        g = generators.grid_graph(3, 4)
        assert g.num_vertices == 12
        # edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
        assert g.num_edges == 17
        assert g.has_edge((0, 0), (0, 1))
        assert g.has_edge((0, 0), (1, 0))
        assert not g.has_edge((0, 0), (1, 1))

    def test_grid_square_default(self):
        g = generators.grid_graph(4)
        assert g.num_vertices == 16

    def test_balanced_tree(self):
        g = generators.balanced_tree(2, 3)
        assert g.num_vertices == 15  # 1 + 2 + 4 + 8
        assert g.num_edges == 14
        RootedTree(g, 0)  # valid tree

    def test_balanced_tree_height_zero(self):
        g = generators.balanced_tree(3, 0)
        assert g.num_vertices == 1

    def test_caterpillar(self):
        g = generators.caterpillar_tree(4, 2)
        assert g.num_vertices == 4 + 8
        assert g.num_edges == g.num_vertices - 1
        RootedTree(g, 0)

    def test_spider(self):
        g = generators.spider_tree(3, 4)
        assert g.num_vertices == 1 + 12
        assert g.degree(0) == 3
        RootedTree(g, 0)


class TestRandomFamilies:
    def test_random_tree_is_tree(self, rng):
        for n in (1, 2, 3, 10, 100):
            g = generators.random_tree(n, rng)
            assert g.num_vertices == n
            assert g.num_edges == n - 1 if n > 1 else g.num_edges == 0
            if n >= 1:
                RootedTree(g, 0)

    def test_random_tree_varies(self, rng):
        trees = [generators.random_tree(20, rng) for _ in range(5)]
        edge_sets = {frozenset(t.edge_list()) for t in trees}
        assert len(edge_sets) > 1

    def test_erdos_renyi_connected(self, rng):
        g = generators.erdos_renyi_graph(30, 0.05, rng)
        assert is_connected(g)
        assert g.num_vertices == 30

    def test_erdos_renyi_not_forced_connected(self, rng):
        g = generators.erdos_renyi_graph(
            30, 0.0, rng, ensure_connected=False
        )
        assert g.num_edges == 0

    def test_erdos_renyi_full_probability(self, rng):
        g = generators.erdos_renyi_graph(10, 1.0, rng)
        assert g.num_edges == 45

    def test_erdos_renyi_invalid_p(self, rng):
        with pytest.raises(GraphError):
            generators.erdos_renyi_graph(5, 1.5, rng)

    def test_random_geometric_connected(self, rng):
        g, positions = generators.random_geometric_graph(40, 0.2, rng)
        assert is_connected(g)
        assert set(positions) == set(g.vertices())

    def test_random_geometric_weights_are_distances(self, rng):
        import math

        g, positions = generators.random_geometric_graph(25, 0.3, rng)
        for u, v, w in g.edges():
            xu, yu = positions[u]
            xv, yv = positions[v]
            assert w == pytest.approx(math.hypot(xu - xv, yu - yv))

    def test_assign_random_weights_range(self, rng):
        g = generators.grid_graph(4, 4)
        weighted = generators.assign_random_weights(g, rng, 2.0, 5.0)
        for _, _, w in weighted.edges():
            assert 2.0 <= w <= 5.0
        # topology untouched
        assert weighted.num_edges == g.num_edges

    def test_assign_random_weights_invalid(self, rng):
        g = generators.grid_graph(2, 2)
        with pytest.raises(GraphError):
            generators.assign_random_weights(g, rng, -1.0, 1.0)
        with pytest.raises(GraphError):
            generators.assign_random_weights(g, rng, 2.0, 1.0)

    def test_generators_are_seed_deterministic(self):
        from repro import Rng

        a = generators.random_tree(30, Rng(7))
        b = generators.random_tree(30, Rng(7))
        assert a.edge_list() == b.edge_list()
