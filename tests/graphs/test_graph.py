"""Unit tests for :mod:`repro.graphs.graph`."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EdgeNotFoundError,
    GraphError,
    VertexNotFoundError,
    WeightedGraph,
    WeightError,
)


class TestConstruction:
    def test_empty_graph(self):
        g = WeightedGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert not g.directed

    def test_add_vertex_idempotent(self):
        g = WeightedGraph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.num_vertices == 1

    def test_add_edge_creates_vertices(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 3.0)
        assert g.has_vertex(1)
        assert g.has_vertex(2)
        assert g.weight(1, 2) == 3.0

    def test_add_edge_returns_canonical_key(self):
        g = WeightedGraph()
        key = g.add_edge("x", "y", 1.0)
        assert key == ("x", "y")
        # Re-adding in the other orientation keeps the canonical key.
        key2 = g.add_edge("y", "x", 2.0)
        assert key2 == ("x", "y")
        assert g.weight("x", "y") == 2.0
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_from_edges_default_weight(self):
        g = WeightedGraph.from_edges([(0, 1), (1, 2)])
        assert g.weight(0, 1) == 1.0
        assert g.num_edges == 2

    def test_from_edges_with_weights(self):
        g = WeightedGraph.from_edges([(0, 1, 5.0)])
        assert g.weight(0, 1) == 5.0

    def test_from_edges_bad_tuple(self):
        with pytest.raises(GraphError):
            WeightedGraph.from_edges([(0, 1, 2.0, 3.0)])

    def test_remove_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0)])
        g.remove_edge(1, 0)  # either orientation works
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_remove_missing_edge(self):
        g = WeightedGraph()
        g.add_vertex(0)
        g.add_vertex(1)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 1)


class TestQueries:
    def test_undirected_symmetry(self, triangle):
        assert triangle.weight(0, 1) == triangle.weight(1, 0)
        assert triangle.has_edge(2, 0)

    def test_neighbors(self, triangle):
        neighbors = dict(triangle.neighbors(1))
        assert neighbors == {0: 1.0, 2: 2.0}

    def test_neighbors_missing_vertex(self, triangle):
        with pytest.raises(VertexNotFoundError):
            list(triangle.neighbors(99))

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2

    def test_contains_and_len(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle
        assert len(triangle) == 3

    def test_edge_key_missing(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.edge_key(0, 99)
        assert triangle.edge_key(0, 99, missing_ok=True) is None

    def test_repr(self, triangle):
        assert "|V|=3" in repr(triangle)
        assert "undirected" in repr(triangle)


class TestDirected:
    def test_directed_edges_one_way(self):
        g = WeightedGraph(directed=True)
        g.add_edge("a", "b", 1.0)
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_predecessors(self):
        g = WeightedGraph(directed=True)
        g.add_edge("a", "b", 1.0)
        g.add_edge("c", "b", 2.0)
        preds = dict(g.predecessors("b"))
        assert preds == {"a": 1.0, "c": 2.0}

    def test_directed_weight_update(self):
        g = WeightedGraph(directed=True)
        g.add_edge("a", "b", 1.0)
        g.set_weight("a", "b", 9.0)
        assert dict(g.predecessors("b"))["a"] == 9.0


class TestWeights:
    def test_set_weight_either_orientation(self, triangle):
        triangle.set_weight(1, 0, 7.5)
        assert triangle.weight(0, 1) == 7.5
        assert dict(triangle.neighbors(0))[1] == 7.5

    def test_weights_dict(self, triangle):
        w = triangle.weights()
        assert w[(0, 1)] == 1.0
        assert len(w) == 3

    def test_weight_vector_default_order(self, triangle):
        np.testing.assert_allclose(
            triangle.weight_vector(), [1.0, 2.0, 4.0]
        )

    def test_weight_vector_custom_order(self, triangle):
        vec = triangle.weight_vector(order=[(2, 0), (0, 1)])
        np.testing.assert_allclose(vec, [4.0, 1.0])

    def test_with_weights_mapping(self, triangle):
        clone = triangle.with_weights({(1, 0): 10.0})
        assert clone.weight(0, 1) == 10.0
        assert triangle.weight(0, 1) == 1.0  # original untouched

    def test_with_weights_sequence(self, triangle):
        clone = triangle.with_weights([7.0, 8.0, 9.0])
        np.testing.assert_allclose(clone.weight_vector(), [7.0, 8.0, 9.0])

    def test_with_weights_wrong_length(self, triangle):
        with pytest.raises(WeightError):
            triangle.with_weights([1.0])

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == 7.0

    def test_check_nonnegative(self, triangle):
        triangle.check_nonnegative()
        triangle.set_weight(0, 1, -0.5)
        with pytest.raises(WeightError):
            triangle.check_nonnegative()

    def test_check_bounded(self, triangle):
        triangle.check_bounded(4.0)
        with pytest.raises(WeightError):
            triangle.check_bounded(3.9)


class TestDerived:
    def test_copy_independence(self, triangle):
        clone = triangle.copy()
        clone.set_weight(0, 1, 99.0)
        assert triangle.weight(0, 1) == 1.0

    def test_copy_preserves_isolated_vertices(self):
        g = WeightedGraph()
        g.add_vertex("lonely")
        assert g.copy().has_vertex("lonely")

    def test_subgraph(self, triangle):
        sub = triangle.subgraph([0, 1])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.weight(0, 1) == 1.0

    def test_subgraph_missing_vertex(self, triangle):
        with pytest.raises(VertexNotFoundError):
            triangle.subgraph([0, 42])

    def test_path_weight(self, triangle):
        assert triangle.path_weight([0, 1, 2]) == 3.0

    def test_path_weight_invalid(self, triangle):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(EdgeNotFoundError):
            g.path_weight([0, 1, 2])

    def test_is_path(self, triangle):
        assert triangle.is_path([0, 1, 2])
        assert triangle.is_path([0])
        assert not triangle.is_path([])
        assert not triangle.is_path([0, 99])

    def test_is_path_nonadjacent(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        assert not g.is_path([0, 1, 2])
