"""Unit tests for :mod:`repro.serving.ledger`."""

from __future__ import annotations

import pytest

from repro import BudgetExceededError, PrivacyParams
from repro.exceptions import PrivacyError
from repro.serving import BudgetLedger, LedgerEntry


class TestSpending:
    def test_records_entries(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        entry = ledger.spend(PrivacyParams(0.5), tenant="eta", label="x")
        assert entry == LedgerEntry(
            epoch=0, tenant="eta", label="x", params=PrivacyParams(0.5)
        )
        assert ledger.records() == [entry]
        assert ledger.records(tenant="eta") == [entry]
        assert ledger.records(tenant="routing") == []

    def test_fails_closed_per_tenant(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        ledger.spend(PrivacyParams(0.8), tenant="eta")
        with pytest.raises(BudgetExceededError):
            ledger.spend(PrivacyParams(0.3), tenant="eta")
        # A refused spend is not recorded.
        assert len(ledger.records()) == 1
        # Tenants are independent within the epoch.
        ledger.spend(PrivacyParams(1.0), tenant="routing")

    def test_can_spend(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        assert ledger.can_spend(PrivacyParams(1.0))
        ledger.spend(PrivacyParams(0.75))
        assert not ledger.can_spend(PrivacyParams(0.5))
        assert ledger.remaining_eps() == pytest.approx(0.25)

    def test_delta_tracked(self):
        ledger = BudgetLedger(PrivacyParams(1.0, 1e-6))
        ledger.spend(PrivacyParams(0.5, 1e-6))
        with pytest.raises(BudgetExceededError):
            ledger.spend(PrivacyParams(0.1, 1e-6))
        assert ledger.remaining_delta() == pytest.approx(0.0)

    def test_empty_tenant_rejected(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        with pytest.raises(PrivacyError):
            ledger.spend(PrivacyParams(0.1), tenant="")

    def test_refused_spend_does_not_register_tenant(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        with pytest.raises(BudgetExceededError):
            ledger.spend(PrivacyParams(2.0), tenant="greedy")
        assert ledger.tenants == []
        assert ledger.records() == []

    def test_read_only_queries_do_not_register_tenants(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        assert ledger.can_spend(PrivacyParams(0.5), tenant="probe")
        assert ledger.remaining_eps("probe") == pytest.approx(1.0)
        assert ledger.remaining_delta("probe") == 0.0
        assert ledger.tenants == []  # only actual spends register


class TestRotation:
    def test_rotation_resets_budget(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        ledger.spend(PrivacyParams(1.0))
        with pytest.raises(BudgetExceededError):
            ledger.spend(PrivacyParams(0.1))
        assert ledger.rotate() == 1
        ledger.spend(PrivacyParams(1.0))  # fresh epoch, fresh budget

    def test_history_survives_rotation(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        ledger.spend(PrivacyParams(0.5), label="first")
        ledger.rotate()
        ledger.spend(PrivacyParams(0.5), label="second")
        assert len(ledger.records()) == 2
        assert [e.epoch for e in ledger.records()] == [0, 1]
        assert ledger.records(epoch=0)[0].label == "first"
        assert ledger.records(epoch=1)[0].label == "second"

    def test_tenants_listed_per_epoch(self):
        ledger = BudgetLedger(PrivacyParams(1.0))
        ledger.spend(PrivacyParams(0.1), tenant="a")
        ledger.spend(PrivacyParams(0.1), tenant="b")
        assert sorted(ledger.tenants) == ["a", "b"]
        ledger.rotate()
        assert ledger.tenants == []
