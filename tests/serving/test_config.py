"""Unit tests for :mod:`repro.serving.config` — the declarative
serving config, the ``serve()`` factory, and the shared
``DistanceServer`` surface."""

from __future__ import annotations

import json

import pytest

from repro import (
    BudgetExceededError,
    DistanceServer,
    DistanceService,
    GraphError,
    MechanismError,
    PrivacyParams,
    Rng,
    ServingConfig,
    ShardedDistanceService,
    serve,
)
from repro.exceptions import PrivacyError
from repro.graphs import generators
from repro.serving.batching import BoundedCache
from repro.serving.config import EPOCH_POLICIES
from repro.workloads import grid_road_network, uniform_pairs


class TestServingConfig:
    def test_json_round_trip(self):
        config = ServingConfig(
            mechanism="hub-set",
            eps=0.5,
            delta=1e-6,
            weight_bound=3.0,
            epoch_policy="fixed",
            backend="numpy",
            shards=4,
            relay_fraction=0.25,
            partition_seed=7,
            cache_size=128,
            tenant="navigation",
        )
        restored = ServingConfig.from_json(config.to_json())
        assert restored == config

    def test_defaults_round_trip(self):
        config = ServingConfig()
        assert ServingConfig.from_json(config.to_json()) == config

    def test_missing_fields_take_defaults(self):
        document = {
            "format": "repro-serving-config",
            "version": 1,
            "eps": 2.0,
        }
        config = ServingConfig.from_json(json.dumps(document))
        assert config.eps == 2.0
        assert config.mechanism == "auto"
        assert config.shards == 1

    def test_unknown_fields_rejected(self):
        document = {
            "format": "repro-serving-config",
            "version": 1,
            "epsilon": 2.0,  # typo for eps
        }
        with pytest.raises(GraphError) as excinfo:
            ServingConfig.from_json(json.dumps(document))
        assert "epsilon" in str(excinfo.value)

    def test_wrong_format_and_version_rejected(self):
        with pytest.raises(GraphError):
            ServingConfig.from_json(json.dumps({"format": "other"}))
        with pytest.raises(GraphError):
            ServingConfig.from_json(
                json.dumps(
                    {"format": "repro-serving-config", "version": 99}
                )
            )

    def test_invalid_fields_rejected(self):
        with pytest.raises(PrivacyError):
            ServingConfig(eps=-1.0)
        with pytest.raises(MechanismError):
            ServingConfig(mechanism="quantum")
        with pytest.raises(GraphError):
            ServingConfig(epoch_policy="sometimes")
        with pytest.raises(GraphError):
            ServingConfig(shards=0)
        with pytest.raises(PrivacyError):
            ServingConfig(shards=2, relay_fraction=1.5)
        with pytest.raises(GraphError):
            ServingConfig(cache_size=0)
        assert set(EPOCH_POLICIES) == {"rotate", "fixed"}

    def test_with_overrides_revalidates(self):
        config = ServingConfig(eps=1.0)
        assert config.with_overrides(eps=2.0).eps == 2.0
        with pytest.raises(GraphError):
            config.with_overrides(shards=-1)

    def test_budget_property(self):
        config = ServingConfig(eps=0.5, delta=1e-7)
        assert config.budget == PrivacyParams(0.5, 1e-7)


class TestServeFactory:
    def test_unsharded_bit_identical_to_direct_construction(self):
        """The E16 acceptance scenario: serve() with mechanism='auto'
        picks the same mechanism and produces bit-for-bit identical
        query values to the directly-constructed DistanceService."""
        network = grid_road_network(8, 8, Rng(300))
        direct = DistanceService(network.graph, 1.0, Rng(301))
        served = serve(network.graph, ServingConfig(eps=1.0), Rng(301))
        assert isinstance(served, DistanceService)
        assert served.mechanism == direct.mechanism
        pairs = uniform_pairs(network.graph, 200, Rng(302))
        assert served.query_batch(pairs).answers == (
            direct.query_batch(pairs).answers
        )

    def test_sharded_bit_identical_to_direct_construction(self):
        """The E19 acceptance scenario, reduced: a sharded config is
        bit-for-bit the directly-constructed ShardedDistanceService."""
        network = grid_road_network(8, 8, Rng(310))
        direct = ShardedDistanceService(
            network.graph, 1.0, Rng(311), shards=2, mechanism="hub-set"
        )
        served = serve(
            network.graph,
            ServingConfig(eps=1.0, shards=2, mechanism="hub-set"),
            Rng(311),
        )
        assert isinstance(served, ShardedDistanceService)
        assert served.mechanism == direct.mechanism
        pairs = uniform_pairs(network.graph, 200, Rng(312))
        assert served.query_batch(pairs).answers == (
            direct.query_batch(pairs).answers
        )

    def test_config_json_round_trip_serves_identically(self):
        """Round-tripping the config through JSON changes nothing
        about the server it describes (same seed, same answers)."""
        network = grid_road_network(6, 6, Rng(320))
        config = ServingConfig(eps=0.5, shards=2)
        restored = ServingConfig.from_json(config.to_json())
        a = serve(network.graph, config, Rng(321))
        b = serve(network.graph, restored, Rng(321))
        pairs = uniform_pairs(network.graph, 100, Rng(322))
        assert a.query_batch(pairs).answers == (
            b.query_batch(pairs).answers
        )

    def test_auto_matches_select_mechanism(self, rng):
        from repro.serving import select_mechanism

        grid = generators.grid_graph(5, 5)
        service = serve(grid, ServingConfig(eps=1.0), rng)
        assert service.mechanism == select_mechanism(
            grid, PrivacyParams(1.0)
        )

    def test_forced_mechanism_and_weight_bound(self, rng):
        grid = generators.grid_graph(4, 4)
        service = serve(
            grid,
            ServingConfig(
                eps=1.0, mechanism="bounded-weight", weight_bound=1.0
            ),
            rng,
        )
        assert service.mechanism == "bounded-weight"

    def test_explicit_plan_overrides_partitioning(self, rng):
        from repro.serving import partition_graph

        network = grid_road_network(6, 6, Rng(330))
        plan = partition_graph(network.graph, 3, seed=5)
        service = serve(
            network.graph,
            ServingConfig(eps=1.0, shards=3),
            rng,
            plan=plan,
        )
        assert service.plan is plan

    def test_plan_disagreeing_with_config_shards_rejected(self, rng):
        """Regression: a multi-shard config and an explicit plan that
        disagree must raise, not silently trust the plan."""
        from repro.serving import partition_graph

        network = grid_road_network(6, 6, Rng(331))
        plan = partition_graph(network.graph, 2, seed=5)
        with pytest.raises(GraphError, match="disagrees"):
            serve(
                network.graph,
                ServingConfig(eps=1.0, shards=4),
                rng,
                plan=plan,
            )


class TestEpochPolicy:
    def test_rotate_policy_resets_budget_each_refresh(self, rng):
        grid = generators.grid_graph(3, 3)
        service = serve(
            grid, ServingConfig(eps=1.0, epoch_policy="rotate"), rng
        )
        service.refresh()
        service.refresh()
        assert service.epoch == 2
        assert service.stats.epochs_built == 3

    def test_fixed_policy_fails_closed_when_exhausted(self, rng):
        grid = generators.grid_graph(3, 3)
        service = serve(
            grid, ServingConfig(eps=1.0, epoch_policy="fixed"), rng
        )
        # The epoch never turns: a second full-budget rebuild busts
        # the per-epoch cap and is refused before drawing noise.
        with pytest.raises(BudgetExceededError):
            service.refresh()
        assert service.epoch == 0

    def test_shared_ledger_wins_over_policy(self, rng):
        from repro.serving import BudgetLedger

        ledger = BudgetLedger(PrivacyParams(2.0))
        grid = generators.grid_graph(3, 3)
        service = serve(
            grid,
            ServingConfig(eps=1.0, epoch_policy="rotate"),
            rng,
            ledger=ledger,
        )
        service.refresh()  # shared ledger: no rotation
        assert ledger.epoch == 0
        assert len(ledger.records()) == 2


class TestDistanceServerSurface:
    def test_both_shapes_satisfy_the_protocol(self, rng):
        network = grid_road_network(6, 6, Rng(340))
        unsharded = serve(network.graph, ServingConfig(eps=1.0), rng)
        sharded = serve(
            network.graph,
            ServingConfig(eps=1.0, shards=2),
            rng.spawn(),
        )
        for server in (unsharded, sharded):
            assert isinstance(server, DistanceServer)

    def test_shared_stat_counter_names(self, rng):
        """The satellite fix: both service shapes expose the same
        counters (num_queries, cache_hits, epoch) — no consumer
        special-cases shards."""
        network = grid_road_network(6, 6, Rng(341))
        for shards in (1, 2):
            server = serve(
                network.graph,
                ServingConfig(eps=1.0, shards=shards),
                rng.spawn(),
            )
            server.query((0, 0), (5, 5))
            server.query((5, 5), (0, 0))  # canonical-pair cache hit
            server.query_batch([((0, 0), (1, 1))])
            stats = server.stats
            assert stats.num_queries == 3
            assert stats.point_queries == 2
            assert stats.cache_hits == 1
            assert server.epoch == 0
            snapshot = stats.as_dict()
            assert snapshot["num_queries"] == 3
            assert snapshot["cache_hits"] == 1

    def test_simulate_consumes_shared_stats(self):
        from repro.serving import replay_rush_hour

        for shards in (1, 2):
            report = replay_rush_hour(
                Rng(55),
                rows=5,
                cols=5,
                epochs=1,
                queries_per_epoch=30,
                eps=1.0,
                shards=shards,
            )
            assert report.server_stats["num_queries"] == 30
            assert "cache_hits" in report.server_stats

    def test_simulate_accepts_a_config(self):
        from repro.serving import replay_rush_hour

        report = replay_rush_hour(
            Rng(56),
            rows=5,
            cols=5,
            epochs=1,
            queries_per_epoch=25,
            config=ServingConfig(eps=2.0, shards=2),
        )
        assert report.total_queries == 25
        assert report.eps == 2.0
        assert report.mechanism.startswith("sharded(2x")

    def test_simulate_rejects_config_flag_clash(self):
        from repro.serving import replay_rush_hour

        with pytest.raises(GraphError):
            replay_rush_hour(
                Rng(57),
                eps=2.0,
                config=ServingConfig(eps=1.0),
            )


class TestBoundedCache:
    def test_cache_size_bounds_the_service_cache(self, rng):
        grid = generators.grid_graph(4, 4)
        service = serve(
            grid, ServingConfig(eps=1.0, cache_size=5), rng
        )
        vertices = list(grid.vertices())
        answers = {}
        for v in vertices[1:12]:
            answers[v] = service.query(vertices[0], v)
        assert len(service._cache) <= 5
        # Evicted answers recompute identically (post-processing of an
        # immutable synopsis).
        for v, value in answers.items():
            assert service.query(vertices[0], v) == value

    def test_lru_eviction_order(self):
        cache = BoundedCache(2)
        cache[("a", "b")] = 1.0
        cache[("a", "c")] = 2.0
        cache[("a", "b")]  # touch: ("a", "c") is now LRU
        cache[("a", "d")] = 3.0
        assert ("a", "b") in cache
        assert ("a", "c") not in cache
        assert len(cache) == 2

    def test_rejects_nonpositive_size(self):
        with pytest.raises(GraphError):
            BoundedCache(0)
