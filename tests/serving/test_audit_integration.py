"""Integration tests for the privacy audit trail against live serving
stacks: bit-exact replay verification for both service shapes,
fail-closed handling of damaged on-disk logs, and the observational
purity of auditing (seeded answers identical with it on, off, or
writing to disk)."""

from __future__ import annotations

import pytest

from repro.dp.params import PrivacyParams
from repro.exceptions import AuditError
from repro.graphs.generators import grid_graph
from repro.rng import Rng
from repro.serving.ledger import BudgetLedger
from repro.serving.service import DistanceService
from repro.serving.sharding import ShardedDistanceService
from repro.telemetry import AuditLog, Telemetry, use_telemetry
from repro.telemetry.audit import (
    read_audit_log,
    verify_against_ledger,
    verify_audit_log,
)

GRAPH = grid_graph(5, 5)
PAIRS = [
    ((0, 0), (4, 4)),
    ((1, 1), (3, 2)),
    ((0, 3), (4, 0)),
    ((2, 2), (2, 2)),
]


def _audited_bundle(path=None) -> Telemetry:
    return Telemetry().with_audit(AuditLog(path))


class TestVerifyAgainstLiveLedger:
    def test_unsharded_bit_exact_across_rotations(self):
        telemetry = _audited_bundle()
        service = DistanceService(GRAPH, 0.5, Rng(0), telemetry=telemetry)
        service.query_batch(PAIRS)
        service.refresh()
        service.query((0, 0), (4, 4))
        service.refresh()
        summary = verify_against_ledger(
            telemetry.audit.records(), service.ledger, telemetry.registry
        )
        assert summary["verified"] is True
        assert summary["ledger_epoch"] == 2
        assert summary["verified_tenants"] == ["distance-service"]

    def test_sharded_bit_exact_across_refreshes(self):
        telemetry = _audited_bundle()
        service = ShardedDistanceService(
            GRAPH, 1.0, Rng(3), shards=2, telemetry=telemetry
        )
        service.query_batch(PAIRS)
        service.refresh()
        service.refresh_shard(0)
        summary = verify_against_ledger(
            telemetry.audit.records(), service.ledger, telemetry.registry
        )
        assert summary["verified"] is True
        # Regional shard tenants plus the boundary-hub relay all
        # spend, and every one of them is replayed and checked.
        tenants = summary["verified_tenants"]
        assert any(t.endswith("/relay") for t in tenants)
        assert any("/shard-" in t for t in tenants)

    def test_interleaved_tenants_on_shared_ledger(self):
        ledger = BudgetLedger(PrivacyParams(4.0))
        telemetry = _audited_bundle()
        with use_telemetry(telemetry):
            west = DistanceService(
                GRAPH, 0.5, Rng(0), ledger=ledger, tenant="west",
                telemetry=telemetry,
            )
            east = DistanceService(
                GRAPH, 0.75, Rng(1), ledger=ledger, tenant="east",
                telemetry=telemetry,
            )
            # Interleave spends within the epoch: shared-ledger
            # refreshes do not rotate, they spend more of epoch 0.
            west.refresh()
            east.refresh()
            west.refresh()
            # The owner turns the epoch; both tenants rebuild into it.
            ledger.rotate()
            east.refresh()
            west.refresh()
        summary = verify_against_ledger(
            telemetry.audit.records(), ledger, telemetry.registry
        )
        assert summary["verified"] is True
        assert summary["verified_tenants"] == ["east", "west"]
        # Bit-exact current-epoch sums, not approximate ones.
        odometer = summary["odometer"]
        assert odometer["tenants"]["west"]["spent_eps"] == (
            ledger.spent("west").eps
        )
        assert odometer["tenants"]["east"]["spent_eps"] == (
            ledger.spent("east").eps
        )
        assert odometer["tenants"]["west"]["lifetime_spends"] == 4
        assert odometer["tenants"]["east"]["lifetime_spends"] == 3

    def test_replay_disagrees_with_foreign_ledger(self):
        telemetry = _audited_bundle()
        DistanceService(GRAPH, 0.5, Rng(0), telemetry=telemetry)
        other = BudgetLedger(PrivacyParams(0.5))
        with pytest.raises(AuditError, match="active tenants"):
            verify_against_ledger(telemetry.audit.records(), other)


class TestOnDiskLogs:
    def test_service_log_round_trips_and_verifies(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        telemetry = _audited_bundle(path)
        service = DistanceService(GRAPH, 0.5, Rng(0), telemetry=telemetry)
        service.query_batch(PAIRS)
        service.refresh()
        telemetry.audit.close()
        records = read_audit_log(path)
        assert records == telemetry.audit.records()
        assert verify_audit_log(records)["verified"] is True
        verify_against_ledger(records, service.ledger, telemetry.registry)

    def test_corrupted_service_log_raises_audit_error(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        telemetry = _audited_bundle(path)
        DistanceService(GRAPH, 0.5, Rng(0), telemetry=telemetry)
        telemetry.audit.close()
        lines = path.read_text().splitlines()
        target = next(
            i for i, line in enumerate(lines) if "budget.spend" in line
        )
        lines[target] = lines[target].replace('"eps":0.5', '"eps":0.1')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(AuditError, match="hash chain broken"):
            read_audit_log(path)

    def test_truncated_service_log_raises_audit_error(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        telemetry = _audited_bundle(path)
        DistanceService(GRAPH, 0.5, Rng(0), telemetry=telemetry)
        telemetry.audit.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 25])
        with pytest.raises(AuditError):
            read_audit_log(path)


class TestObservationalPurity:
    """Auditing must never touch the Rng: answers are bit-identical
    with the audit trail off, in memory, or appending to disk."""

    def _answers(self, telemetry: Telemetry | None):
        service = DistanceService(GRAPH, 0.5, Rng(42), telemetry=telemetry)
        values = [service.query(*pair) for pair in PAIRS]
        estimates = [service.estimate(*pair) for pair in PAIRS]
        service.refresh()
        values += [service.query(*pair) for pair in PAIRS]
        return values, estimates

    def test_seeded_answers_identical_on_off_disk(self, tmp_path):
        baseline_values, baseline_estimates = self._answers(None)
        memory_values, memory_estimates = self._answers(_audited_bundle())
        disk_telemetry = _audited_bundle(tmp_path / "audit.jsonl")
        disk_values, disk_estimates = self._answers(disk_telemetry)
        assert memory_values == baseline_values
        assert disk_values == baseline_values
        for base, mem, disk in zip(
            baseline_estimates, memory_estimates, disk_estimates
        ):
            assert mem.value == base.value
            assert disk.value == base.value
            assert mem.noise_scale == base.noise_scale
            assert disk.noise_scale == base.noise_scale

    def test_sharded_seeded_answers_identical(self, tmp_path):
        def answers(telemetry):
            service = ShardedDistanceService(
                GRAPH, 1.0, Rng(9), shards=2, telemetry=telemetry
            )
            return [service.query(*pair) for pair in PAIRS]

        baseline = answers(None)
        assert answers(_audited_bundle()) == baseline
        assert answers(_audited_bundle(tmp_path / "a.jsonl")) == baseline
