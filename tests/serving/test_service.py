"""Unit tests for :mod:`repro.serving.service` — including the
acceptance scenario: a 10k-query batch served from one synopsis with a
single ledger spend."""

from __future__ import annotations

import pytest

from repro import (
    BudgetExceededError,
    PrivacyParams,
    Rng,
)
from repro.exceptions import PrivacyError
from repro.graphs import generators
from repro.serving import (
    BudgetLedger,
    DistanceService,
    select_mechanism,
)
from repro.serving.synopsis import (
    AllPairsSynopsis,
    BoundedWeightSynopsis,
    TreeSynopsis,
)
from repro.workloads import grid_road_network, uniform_pairs


class TestMechanismSelection:
    def test_tree_topology_selects_tree(self, rng):
        tree = generators.random_tree(10, rng)
        assert select_mechanism(tree, PrivacyParams(1.0)) == "tree"

    def test_weight_bound_selects_covering(self):
        grid = generators.grid_graph(4, 4)
        assert (
            select_mechanism(grid, PrivacyParams(1.0), weight_bound=2.0)
            == "bounded-weight"
        )

    def test_pure_budget_selects_basic(self):
        grid = generators.grid_graph(4, 4)
        assert select_mechanism(grid, PrivacyParams(1.0)) == "all-pairs-basic"

    def test_approx_budget_selects_advanced(self):
        grid = generators.grid_graph(4, 4)
        assert (
            select_mechanism(grid, PrivacyParams(1.0, 1e-6))
            == "all-pairs-advanced"
        )

    def test_e_equals_v_minus_one_but_not_tree(self):
        # A triangle plus an isolated vertex has E = V - 1 without
        # being a tree; selection must not misclassify it.
        graph = generators.cycle_graph(3)
        graph.add_vertex(99)
        assert (
            select_mechanism(graph, PrivacyParams(1.0)) != "tree"
        )


class TestServiceLifecycle:
    def test_synopsis_kind_matches_mechanism(self, rng):
        tree = generators.random_tree(12, rng)
        assert isinstance(
            DistanceService(tree, 1.0, rng).synopsis, TreeSynopsis
        )
        grid = generators.grid_graph(4, 4)
        assert isinstance(
            DistanceService(grid, 1.0, rng).synopsis, AllPairsSynopsis
        )
        assert isinstance(
            DistanceService(grid, 1.0, rng, weight_bound=1.0).synopsis,
            BoundedWeightSynopsis,
        )

    def test_construction_spends_once(self, rng):
        grid = generators.grid_graph(4, 4)
        service = DistanceService(grid, 0.5, rng)
        records = service.ledger.records()
        assert len(records) == 1
        assert records[0].params == PrivacyParams(0.5)
        assert "all-pairs-basic" in records[0].label

    def test_fails_closed_on_shared_ledger(self, rng):
        ledger = BudgetLedger(PrivacyParams(1.0))
        ledger.spend(PrivacyParams(0.8), tenant="distance-service")
        grid = generators.grid_graph(3, 3)
        with pytest.raises(BudgetExceededError):
            DistanceService(grid, 0.5, rng, ledger=ledger)
        # Refused before building: no synopsis spend was recorded.
        assert len(ledger.records()) == 1

    def test_refresh_rotates_and_respends(self, rng):
        network = grid_road_network(4, 4, rng)
        service = DistanceService(network.graph, 1.0, rng)
        first = service.query((0, 0), (3, 3))
        service.refresh(network.graph.with_weights(
            {e: w + 0.5 for e, w in network.graph.weights().items()}
        ))
        second = service.query((0, 0), (3, 3))
        assert first != second  # fresh noise, fresh weights
        assert service.ledger.epoch == 1
        assert len(service.ledger.records()) == 2
        assert service.stats.epochs_built == 2

    def test_unknown_mechanism_rejected(self, rng):
        grid = generators.grid_graph(3, 3)
        with pytest.raises(PrivacyError):
            DistanceService(grid, 1.0, rng, mechanism="quantum")

    def test_config_error_does_not_burn_budget(self, rng):
        """A data-independent misconfiguration must be caught before
        the ledger spend, so correcting it and retrying works."""
        from repro import GraphError

        ledger = BudgetLedger(PrivacyParams(1.0))
        grid = generators.grid_graph(3, 3)
        with pytest.raises(GraphError):
            DistanceService(
                grid, 1.0, rng, mechanism="bounded-weight", ledger=ledger
            )
        with pytest.raises(PrivacyError):
            DistanceService(
                grid, 1.0, rng, mechanism="all-pairs-advanced",
                ledger=ledger,
            )
        assert ledger.records() == []  # nothing spent on failures
        service = DistanceService(
            grid, 1.0, rng, mechanism="bounded-weight",
            weight_bound=1.0, ledger=ledger,
        )
        assert service.mechanism == "bounded-weight"
        assert len(ledger.records()) == 1

    def test_disconnected_graph_does_not_burn_budget(self, rng):
        """Connectivity is public topology: a disconnected graph is
        rejected before the ledger spend, for every mechanism."""
        from repro import DisconnectedGraphError

        graph = generators.grid_graph(2, 2)
        graph.add_vertex("island")
        ledger = BudgetLedger(PrivacyParams(1.0))
        with pytest.raises(DisconnectedGraphError):
            DistanceService(graph, 1.0, rng, ledger=ledger)
        with pytest.raises(DisconnectedGraphError):
            DistanceService(
                graph, 1.0, rng, weight_bound=1.0, ledger=ledger
            )
        assert ledger.records() == []

    def test_overweight_graph_does_not_burn_budget(self, rng):
        """The weight-bound precondition is checked before the spend,
        mirroring the release's own pre-noise validation."""
        from repro import WeightError

        graph = generators.grid_graph(3, 3).with_weights(
            [5.0] * 12
        )
        ledger = BudgetLedger(PrivacyParams(1.0))
        with pytest.raises(WeightError):
            DistanceService(
                graph, 1.0, rng, weight_bound=1.0, ledger=ledger
            )
        assert ledger.records() == []

    def test_failed_refresh_refuses_to_serve_stale_synopsis(self, rng):
        """If a refresh's rebuild fails, the service must not keep
        answering from the previous epoch's synopsis."""
        from repro import WeightError

        graph = generators.grid_graph(3, 3)
        service = DistanceService(graph, 1.0, rng, weight_bound=1.0)
        assert isinstance(service.query((0, 0), (2, 2)), float)
        bad = graph.with_weights([9.0] * graph.num_edges)
        with pytest.raises(WeightError):
            service.refresh(bad)
        with pytest.raises(PrivacyError):
            service.query((0, 0), (2, 2))
        with pytest.raises(PrivacyError):
            service.query_batch([((0, 0), (2, 2))])
        # A successful refresh restores service.
        service.refresh(graph)
        assert isinstance(service.query((0, 0), (2, 2)), float)

    def test_refresh_does_not_rotate_shared_ledger(self, rng):
        """Refreshing one service must not reset other tenants'
        budgets on a shared ledger; it respends from the remaining
        epoch budget and fails closed when that runs out."""
        ledger = BudgetLedger(PrivacyParams(1.0))
        grid = generators.grid_graph(3, 3)
        service = DistanceService(grid, 0.5, rng, ledger=ledger)
        service.refresh()
        assert ledger.epoch == 0  # shared ledger: epoch unchanged
        assert len(ledger.records()) == 2
        with pytest.raises(BudgetExceededError):
            service.refresh()  # third 0.5 spend exceeds the 1.0 epoch

    def test_forced_mechanism(self, rng):
        grid = generators.grid_graph(3, 3)
        service = DistanceService(
            grid,
            PrivacyParams(1.0, 1e-6),
            rng,
            mechanism="all-pairs-advanced",
        )
        assert service.mechanism == "all-pairs-advanced"


class TestQueryServing:
    def test_point_queries_cached(self, rng):
        grid = generators.grid_graph(4, 4)
        service = DistanceService(grid, 1.0, rng)
        a = service.query((0, 0), (3, 3))
        b = service.query((3, 3), (0, 0))
        assert a == b
        assert service.stats.point_queries == 2
        assert service.stats.cache_hits == 1

    def test_batch_and_point_share_cache(self, rng):
        grid = generators.grid_graph(4, 4)
        service = DistanceService(grid, 1.0, rng)
        value = service.query((0, 0), (2, 2))
        report = service.query_batch([((2, 2), (0, 0))])
        assert report.answers == [value]
        assert report.cache_hits == 1

    def test_acceptance_10k_batch_single_spend(self, rng):
        """The ISSUE acceptance scenario: 10k queries against a 20x20
        grid road network, served from one synopsis, with the ledger
        recording exactly one epoch spend."""
        network = grid_road_network(20, 20, rng)
        service = DistanceService(network.graph, 1.0, rng)
        pairs = uniform_pairs(network.graph, 10_000, rng)
        report = service.query_batch(pairs)
        assert report.num_queries == 10_000
        assert len(report.answers) == 10_000
        assert all(isinstance(a, float) for a in report.answers)
        assert report.queries_per_second > 0
        # Exactly one budget spend, no matter how many queries.
        assert len(service.ledger.records()) == 1
        assert service.ledger.records()[0].params == PrivacyParams(1.0)


class TestHubMechanismSelection:
    """Auto-selection of the improved repro.apsp mechanisms."""

    def test_small_graphs_keep_the_baseline(self, rng):
        small = generators.erdos_renyi_graph(48, 0.1, rng)
        assert (
            select_mechanism(small, PrivacyParams(1.0))
            == "all-pairs-basic"
        )

    def test_large_sparse_graph_selects_hub_set(self, rng):
        graph = generators.erdos_renyi_graph(1024, 2.0 / 1024, rng)
        assert select_mechanism(graph, PrivacyParams(1.0)) == "hub-set"

    def test_selection_threshold_uses_predicted_scales(self):
        # At the margin-adjusted crossover the hub scale must actually
        # undercut the baseline's, not just the vertex-count floor.
        from repro.apsp import predicted_hub_scale
        from repro.serving.service import (
            HUB_MIN_VERTICES,
            HUB_SELECTION_MARGIN,
        )

        n = 1024
        baseline_scale = n * (n - 1) / 2 / 1.0
        assert n >= HUB_MIN_VERTICES
        assert (
            predicted_hub_scale(n, 1.0) * HUB_SELECTION_MARGIN
            < baseline_scale
        )

    def test_weight_bound_upgrades_at_road_scale(self, rng):
        from repro.serving.service import HUB_BOUNDED_MIN_VERTICES

        large = generators.grid_graph(64, 64)
        assert large.num_vertices >= HUB_BOUNDED_MIN_VERTICES
        assert (
            select_mechanism(
                large, PrivacyParams(1.0), weight_bound=1.0
            )
            == "hub-bounded"
        )
        small = generators.grid_graph(8, 8)
        assert (
            select_mechanism(
                small, PrivacyParams(1.0), weight_bound=1.0
            )
            == "bounded-weight"
        )

    def test_forced_hub_set_on_small_graph(self, rng):
        from repro.serving import HubSetSynopsis

        grid = generators.grid_graph(4, 4)
        service = DistanceService(grid, 1.0, rng, mechanism="hub-set")
        assert service.mechanism == "hub-set"
        assert isinstance(service.synopsis, HubSetSynopsis)
        assert isinstance(service.query((0, 0), (3, 3)), float)

    def test_forced_hub_bounded_requires_weight_bound(self, rng):
        from repro import GraphError

        ledger = BudgetLedger(PrivacyParams(1.0))
        grid = generators.grid_graph(4, 4)
        with pytest.raises(GraphError):
            DistanceService(
                grid, 1.0, rng, mechanism="hub-bounded", ledger=ledger
            )
        assert ledger.records() == []  # config error burns no budget

    def test_acceptance_1024_sparse_auto_selects_and_roundtrips(self):
        """The ISSUE acceptance scenario: on a seeded 1024-vertex
        sparse graph at eps = 1 the service auto-selects hub-set and
        its synopsis survives a JSON round-trip."""
        from repro import Rng, synopsis_from_json
        from repro.serving import HubSetSynopsis

        rng = Rng(20220406)
        graph = generators.erdos_renyi_graph(1024, 2.0 / 1024, rng)
        service = DistanceService(graph, 1.0, rng)
        assert service.mechanism == "hub-set"
        assert isinstance(service.synopsis, HubSetSynopsis)
        value = service.query(0, 1023)
        restored = synopsis_from_json(service.synopsis.to_json())
        assert isinstance(restored, HubSetSynopsis)
        assert restored.distance(0, 1023) == value
        assert len(service.ledger.records()) == 1
