"""Unit tests for :mod:`repro.serving.synopsis`."""

from __future__ import annotations

import json

import pytest

from repro import (
    AllPairsBasicRelease,
    GraphError,
    Rng,
    VertexNotFoundError,
    release_bounded_weight,
    release_tree_all_pairs,
)
from repro.graphs import RootedTree, generators
from repro.serving import (
    AllPairsSynopsis,
    BoundedWeightSynopsis,
    DistanceSynopsis,
    SinglePairSynopsis,
    TreeSynopsis,
    build_single_pair_synopsis,
    register_synopsis,
    synopsis_from_json,
)
from repro.serving.synopsis import canonical_pair


class TestCanonicalPair:
    def test_symmetric(self):
        assert canonical_pair(3, 7) == canonical_pair(7, 3)
        assert canonical_pair((0, 1), (1, 0)) == canonical_pair((1, 0), (0, 1))

    def test_deterministic(self):
        assert canonical_pair("b", "a") == ("a", "b")


class TestAllPairsSynopsis:
    def test_matches_release(self, rng):
        graph = generators.grid_graph(4, 4)
        release = AllPairsBasicRelease(graph, 1.0, rng)
        synopsis = AllPairsSynopsis.from_release(release)
        for s in graph.vertices():
            for t in graph.vertices():
                assert synopsis.distance(s, t) == release.distance(s, t)

    def test_params_carried(self, rng):
        graph = generators.grid_graph(3, 3)
        synopsis = AllPairsSynopsis.from_release(
            AllPairsBasicRelease(graph, 0.5, rng)
        )
        assert synopsis.params.eps == 0.5
        assert synopsis.params.is_pure

    def test_self_distance_zero(self, rng):
        graph = generators.grid_graph(3, 3)
        synopsis = AllPairsSynopsis.from_release(
            AllPairsBasicRelease(graph, 1.0, rng)
        )
        assert synopsis.distance((1, 1), (1, 1)) == 0.0

    def test_unknown_vertex_raises(self, rng):
        graph = generators.grid_graph(3, 3)
        synopsis = AllPairsSynopsis.from_release(
            AllPairsBasicRelease(graph, 1.0, rng)
        )
        with pytest.raises(VertexNotFoundError):
            synopsis.distance((9, 9), (0, 0))

    def test_json_roundtrip(self, rng):
        graph = generators.grid_graph(3, 4)
        synopsis = AllPairsSynopsis.from_release(
            AllPairsBasicRelease(graph, 1.0, rng)
        )
        restored = synopsis_from_json(synopsis.to_json())
        assert isinstance(restored, AllPairsSynopsis)
        assert restored.params == synopsis.params
        for s in graph.vertices():
            for t in graph.vertices():
                assert restored.distance(s, t) == synopsis.distance(s, t)


class TestTreeSynopsis:
    def test_matches_release(self, rng):
        tree = generators.random_tree(25, rng)
        release = release_tree_all_pairs(tree, 1.0, rng, root=0)
        synopsis = TreeSynopsis.from_release(release)
        vertices = tree.vertex_list()
        for s in vertices:
            for t in vertices:
                assert synopsis.distance(s, t) == pytest.approx(
                    release.distance(s, t) if s != t else 0.0
                )

    def test_json_roundtrip(self, rng):
        tree = generators.random_tree(15, rng)
        release = release_tree_all_pairs(tree, 1.0, rng, root=0)
        synopsis = TreeSynopsis.from_release(release)
        restored = synopsis_from_json(synopsis.to_json())
        assert isinstance(restored, TreeSynopsis)
        assert restored.root == synopsis.root
        for s in tree.vertices():
            for t in tree.vertices():
                assert restored.distance(s, t) == pytest.approx(
                    synopsis.distance(s, t)
                )

    def test_serialization_leaks_no_weights(self, rng):
        """The synopsis JSON must contain released values and public
        structure only — never the raw private edge weights."""
        tree = generators.random_tree(10, rng)
        marker = 123.456789
        u, v, _ = next(tree.edges())
        tree.set_weight(u, v, marker)
        release = release_tree_all_pairs(tree, 1.0, rng, root=0)
        text = TreeSynopsis.from_release(release).to_json()
        assert str(marker) not in text


class TestBoundedWeightSynopsis:
    def test_matches_release(self, rng):
        graph = generators.grid_graph(5, 5)
        release = release_bounded_weight(graph, 1.0, 1.0, rng)
        synopsis = BoundedWeightSynopsis.from_release(release)
        for s in graph.vertices():
            for t in graph.vertices():
                assert synopsis.distance(s, t) == release.distance(s, t)

    def test_metadata(self, rng):
        graph = generators.grid_graph(5, 5)
        release = release_bounded_weight(graph, 2.0, 1.0, rng, k=2)
        synopsis = BoundedWeightSynopsis.from_release(release)
        assert synopsis.k == 2
        assert synopsis.weight_bound == 2.0

    def test_json_roundtrip(self, rng):
        graph = generators.grid_graph(4, 4)
        release = release_bounded_weight(graph, 1.0, 1.0, rng)
        synopsis = BoundedWeightSynopsis.from_release(release)
        restored = synopsis_from_json(synopsis.to_json())
        assert isinstance(restored, BoundedWeightSynopsis)
        assert restored.k == synopsis.k
        for s in graph.vertices():
            for t in graph.vertices():
                assert restored.distance(s, t) == synopsis.distance(s, t)


class TestSinglePairSynopsis:
    def test_build_answers_workload_only(self, triangle, rng):
        synopsis = build_single_pair_synopsis(
            triangle, [(0, 1), (1, 2)], 1.0, rng
        )
        assert isinstance(synopsis.distance(0, 1), float)
        assert synopsis.distance(1, 0) == synopsis.distance(0, 1)
        with pytest.raises(GraphError):
            synopsis.distance(0, 2)

    def test_dedupes_and_scales_by_unique_pairs(self, triangle):
        # 3 requests but only 2 unique unordered pairs: noise scale is
        # Q/eps = 2, checked via a zero-noise-impossible statistic over
        # many trials being finite; here just check determinism + dedupe.
        rng_a, rng_b = Rng(7), Rng(7)
        a = build_single_pair_synopsis(
            triangle, [(0, 1), (1, 0), (1, 2)], 1.0, rng_a
        )
        b = build_single_pair_synopsis(
            triangle, [(0, 1), (1, 2)], 1.0, rng_b
        )
        assert a.distance(0, 1) == b.distance(0, 1)
        assert a.num_entries == b.num_entries == 2

    def test_json_roundtrip(self, triangle, rng):
        synopsis = build_single_pair_synopsis(
            triangle, [(0, 1), (0, 2)], 1.0, rng
        )
        restored = synopsis_from_json(synopsis.to_json())
        assert isinstance(restored, SinglePairSynopsis)
        assert restored.distance(0, 2) == synopsis.distance(0, 2)

    def test_nonpositive_eps_rejected(self, triangle, rng):
        from repro.exceptions import PrivacyError

        with pytest.raises(PrivacyError):
            build_single_pair_synopsis(triangle, [(0, 1)], 0.0, rng)


class TestRegistry:
    def test_bad_format_rejected(self):
        with pytest.raises(GraphError):
            synopsis_from_json(json.dumps({"format": "nope"}))

    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphError):
            synopsis_from_json(
                json.dumps(
                    {
                        "format": "repro-synopsis",
                        "version": 1,
                        "kind": "mystery",
                        "eps": 1.0,
                        "delta": 0.0,
                    }
                )
            )

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError):

            @register_synopsis
            class Clash(DistanceSynopsis):  # pragma: no cover
                kind = "all-pairs"


class TestHubSetSynopsis:
    def _release(self, rng, n=6):
        graph = generators.grid_graph(n, n)
        from repro.apsp import HubSetRelease

        return graph, HubSetRelease(graph, 1.0, rng)

    def test_matches_release(self, rng):
        from repro.serving import HubSetSynopsis

        graph, release = self._release(rng)
        synopsis = HubSetSynopsis.from_release(release)
        for s, t in [((0, 0), (5, 5)), ((1, 2), (4, 0)), ((3, 3), (3, 3))]:
            assert synopsis.distance(s, t) == release.distance(s, t)
        assert synopsis.hubs == release.hubs

    def test_json_roundtrip(self, rng):
        from repro.serving import HubSetSynopsis

        graph, release = self._release(rng)
        synopsis = HubSetSynopsis.from_release(release)
        restored = synopsis_from_json(synopsis.to_json())
        assert isinstance(restored, HubSetSynopsis)
        assert restored.params == synopsis.params
        assert restored.hubs == synopsis.hubs
        assert restored.noise_scale == synopsis.noise_scale
        for s in graph.vertices():
            for t in graph.vertices():
                assert restored.distance(s, t) == synopsis.distance(s, t)

    def test_unknown_vertex_raises(self, rng):
        from repro.serving import HubSetSynopsis

        _, release = self._release(rng)
        synopsis = HubSetSynopsis.from_release(release)
        with pytest.raises(VertexNotFoundError):
            synopsis.distance((9, 9), (0, 0))

    def test_vertex_structure_size_mismatch_rejected(self, rng):
        from repro.serving import HubSetSynopsis

        _, release = self._release(rng)
        with pytest.raises(GraphError):
            HubSetSynopsis(
                release.params, [(0, 0)], release.structure
            )


class TestHubBoundedSynopsis:
    def _release(self, rng):
        graph = generators.grid_graph(6, 6)
        from repro.apsp import HubSetBoundedRelease

        return graph, HubSetBoundedRelease(graph, 1.0, 1.0, rng, k=2)

    def test_matches_release(self, rng):
        from repro.serving import HubBoundedSynopsis

        graph, release = self._release(rng)
        synopsis = HubBoundedSynopsis.from_release(release)
        for s in graph.vertices():
            for t in graph.vertices():
                assert synopsis.distance(s, t) == release.distance(s, t)

    def test_json_roundtrip(self, rng):
        from repro.serving import HubBoundedSynopsis

        graph, release = self._release(rng)
        synopsis = HubBoundedSynopsis.from_release(release)
        restored = synopsis_from_json(synopsis.to_json())
        assert isinstance(restored, HubBoundedSynopsis)
        assert restored.weight_bound == release.weight_bound
        assert restored.k == release.k
        for s in graph.vertices():
            for t in graph.vertices():
                assert restored.distance(s, t) == synopsis.distance(s, t)

    def test_bad_assignment_rejected(self, rng):
        from repro.serving import HubBoundedSynopsis

        _, release = self._release(rng)
        synopsis = HubBoundedSynopsis.from_release(release)
        with pytest.raises(GraphError):
            HubBoundedSynopsis(
                release.params,
                release.vertex_order,
                [999] * len(release.vertex_order),
                release.structure,
                release.weight_bound,
                release.k,
            )
        with pytest.raises(GraphError):
            HubBoundedSynopsis(
                release.params,
                release.vertex_order,
                [0],  # wrong length
                release.structure,
                release.weight_bound,
                release.k,
            )


class TestEngineNativeAllPairsBuild:
    """The ROADMAP's engine-native synopsis build: matrix + vectorized
    triangle noise, seeded-identical to wrapping the release object."""

    def test_seeded_equivalence_with_release_path_pure(self):
        from repro.serving import build_all_pairs_synopsis

        graph = generators.grid_graph(4, 5)
        native = build_all_pairs_synopsis(graph, 1.0, Rng(11))
        reference = build_all_pairs_synopsis(
            graph, 1.0, Rng(11), backend="python"
        )
        for s in graph.vertices():
            for t in graph.vertices():
                assert native.distance(s, t) == reference.distance(s, t)

    def test_seeded_equivalence_with_release_path_advanced(self):
        from repro.serving import build_all_pairs_synopsis

        graph = generators.grid_graph(4, 4)
        native = build_all_pairs_synopsis(graph, 1.0, Rng(12), delta=1e-6)
        reference = build_all_pairs_synopsis(
            graph, 1.0, Rng(12), delta=1e-6, backend="python"
        )
        for s in graph.vertices():
            for t in graph.vertices():
                assert native.distance(s, t) == reference.distance(s, t)

    def test_returns_registered_all_pairs_kind(self, rng):
        from repro.serving import build_all_pairs_synopsis

        graph = generators.grid_graph(3, 3)
        synopsis = build_all_pairs_synopsis(graph, 1.0, rng)
        assert isinstance(synopsis, AllPairsSynopsis)
        restored = synopsis_from_json(synopsis.to_json())
        assert restored.distance((0, 0), (2, 2)) == synopsis.distance(
            (0, 0), (2, 2)
        )

    def test_disconnected_rejected(self, rng):
        from repro import DisconnectedGraphError
        from repro.serving import build_all_pairs_synopsis

        graph = generators.grid_graph(2, 2)
        graph.add_vertex("island")
        with pytest.raises(DisconnectedGraphError):
            build_all_pairs_synopsis(graph, 1.0, rng)

    def test_unknown_backend_rejected(self, rng):
        # A typo'd backend must fail loudly, exactly like the release
        # path — not silently fall through to the engine-native build.
        from repro.exceptions import EngineError
        from repro.serving import build_all_pairs_synopsis

        graph = generators.grid_graph(3, 3)
        with pytest.raises(EngineError):
            build_all_pairs_synopsis(graph, 1.0, rng, backend="nmupy")

    def test_single_vertex_graph(self, rng):
        from repro import WeightedGraph
        from repro.serving import build_all_pairs_synopsis

        graph = WeightedGraph()
        graph.add_vertex("only")
        synopsis = build_all_pairs_synopsis(graph, 1.0, rng)
        assert synopsis.distance("only", "only") == 0.0
