"""Unit tests for :mod:`repro.serving.simulate`."""

from __future__ import annotations

import pytest

from repro import GraphError, Rng
from repro.serving import replay_rush_hour


class TestReplay:
    def test_single_epoch_report(self):
        report = replay_rush_hour(
            Rng(0), rows=5, cols=5, epochs=1, queries_per_epoch=50
        )
        assert report.mechanism == "all-pairs-basic"
        assert report.num_epochs == 1
        assert report.total_queries == 50
        assert report.ledger_spends == 1
        assert report.queries_per_second > 0
        assert report.mean_abs_error >= 0.0
        assert report.max_abs_error >= report.mean_abs_error

    def test_one_spend_per_epoch(self):
        report = replay_rush_hour(
            Rng(1), rows=5, cols=5, epochs=3, queries_per_epoch=20
        )
        assert report.ledger_spends == 3
        assert len(report.epochs) == 3
        assert [e.epoch for e in report.epochs] == [0, 1, 2]

    def test_weight_bound_uses_covering_mechanism(self):
        report = replay_rush_hour(
            Rng(2),
            rows=5,
            cols=5,
            epochs=1,
            queries_per_epoch=20,
            weight_bound=4.0,
        )
        assert report.mechanism == "bounded-weight"

    def test_deterministic_given_seed(self):
        a = replay_rush_hour(Rng(3), rows=4, cols=4, queries_per_epoch=30)
        b = replay_rush_hour(Rng(3), rows=4, cols=4, queries_per_epoch=30)
        assert a.mean_abs_error == b.mean_abs_error
        assert a.max_abs_error == b.max_abs_error

    def test_as_dict_is_json_safe(self):
        import json

        report = replay_rush_hour(
            Rng(4), rows=4, cols=4, queries_per_epoch=10
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["epochs"] == 1
        assert payload["total_queries"] == 10

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            replay_rush_hour(Rng(0), epochs=0)
        with pytest.raises(GraphError):
            replay_rush_hour(Rng(0), queries_per_epoch=0)
