"""Profiling, event logs, and the flight recorder across the serving
stack: observational purity, config wiring, phase attribution that
adds up, and slow-query exemplar capture."""

from __future__ import annotations

import time

import pytest

from repro import (
    Rng,
    ServingConfig,
    Telemetry,
    replay_rush_hour,
    serve,
)
from repro.exceptions import GraphError
from repro.graphs import generators
from repro.telemetry import (
    EventLog,
    FlightRecorder,
    PhaseProfiler,
    read_event_log,
    use_telemetry,
)


def _grid(rows=5, cols=5):
    return generators.grid_graph(rows, cols)


def _answers(telemetry, shards=1):
    """All visible outputs of a fixed seeded serving session."""
    config = ServingConfig(eps=1.0, shards=shards)
    service = serve(_grid(), config, Rng(seed=42), telemetry=telemetry)
    pairs = [((0, 0), (4, 4)), ((1, 2), (3, 0)), ((0, 0), (4, 4))]
    point = service.query((0, 1), (4, 3))
    batch = service.query_batch(pairs)
    estimate = service.estimate((2, 2), (0, 4))
    return (point, tuple(batch.answers), estimate.value, estimate.noise_scale)


def _observed_bundle(tmp_path=None):
    bundle = Telemetry()
    bundle = bundle.with_profiler(PhaseProfiler())
    bundle = bundle.with_flight(
        FlightRecorder(threshold_seconds=0.5)
    )
    log = EventLog(
        tmp_path / "events.jsonl" if tmp_path is not None else None
    )
    return bundle.with_log(log)


class TestObservationalPurity:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_bit_identical_with_full_observability(self, shards):
        # The whole PR in one assertion: profiler + flight recorder +
        # event log must never touch the noise stream.
        baseline = _answers(None, shards=shards)
        assert _answers(_observed_bundle(), shards=shards) == baseline

    @pytest.mark.parametrize("shards", [1, 2])
    def test_replay_identical_with_observability(self, shards, tmp_path):
        plain = replay_rush_hour(
            Rng(seed=7), rows=5, cols=5, epochs=2,
            queries_per_epoch=30, shards=shards,
        )
        config = ServingConfig(
            eps=1.0,
            shards=shards,
            profile=True,
            flight_recorder=True,
            flight_threshold_seconds=0.5,
            event_log=str(tmp_path / "events.jsonl"),
        )
        observed = replay_rush_hour(
            Rng(seed=7), rows=5, cols=5, epochs=2,
            queries_per_epoch=30, config=config,
        )
        assert observed.mean_abs_error == plain.mean_abs_error
        assert observed.max_abs_error == plain.max_abs_error


class TestServeConfigWiring:
    def test_serve_attaches_requested_instruments(self, tmp_path):
        config = ServingConfig(
            eps=1.0,
            profile=True,
            flight_recorder=True,
            event_log=str(tmp_path / "events.jsonl"),
        )
        service = serve(_grid(), config, Rng(seed=0))
        assert service.telemetry.profiler.enabled
        assert service.telemetry.flight.enabled
        assert service.telemetry.log.enabled
        # The build itself was profiled.
        assert "synopsis.build" in service.telemetry.profiler.phases()

    def test_injected_instruments_win_over_config(self):
        profiler = PhaseProfiler(trace_allocations=False)
        flight = FlightRecorder(threshold_seconds=0.5)
        bundle = Telemetry().with_profiler(profiler).with_flight(flight)
        config = ServingConfig(
            eps=1.0, profile=True, flight_recorder=True
        )
        service = serve(_grid(), config, Rng(seed=0), telemetry=bundle)
        assert service.telemetry.profiler is profiler
        assert service.telemetry.flight is flight

    def test_flight_threshold_validation(self):
        with pytest.raises(GraphError, match="flight threshold"):
            ServingConfig(eps=1.0, flight_threshold_seconds=0.0)

    def test_flight_threshold_alone_arms_recorder(self):
        config = ServingConfig(eps=1.0, flight_threshold_seconds=1e-9)
        service = serve(_grid(), config, Rng(seed=0))
        assert service.telemetry.flight.enabled
        service.query((0, 0), (4, 4))
        assert service.telemetry.flight.captured >= 1

    def test_config_round_trips_new_fields(self):
        config = ServingConfig(
            eps=1.0,
            profile=True,
            flight_recorder=True,
            flight_threshold_seconds=0.25,
            event_log="events.jsonl",
        )
        again = ServingConfig.from_json(config.to_json())
        assert again.profile is True
        assert again.flight_recorder is True
        assert again.flight_threshold_seconds == 0.25
        assert again.event_log == "events.jsonl"


class TestPhaseAttribution:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_replay_phases_sum_to_measured_wall(self, shards):
        profiler = PhaseProfiler(trace_allocations=False)
        bundle = Telemetry().with_profiler(profiler)
        start = time.perf_counter()
        with use_telemetry(bundle), bundle.span("replay.run"):
            replay_rush_hour(
                Rng(seed=3), rows=6, cols=6, epochs=2,
                queries_per_epoch=50, shards=shards,
                telemetry=bundle,
            )
        measured = time.perf_counter() - start
        attributed = profiler.total_wall_seconds()
        # The acceptance bar: per-phase self times must account for
        # the run's measured wall clock within 10%.
        assert attributed == pytest.approx(measured, rel=0.10)
        phases = profiler.phases()
        expected = {"replay.run", "synopsis.build", "batch.serve",
                    "epoch.refresh", "replay.ground_truth"}
        assert expected <= set(phases)
        if shards > 1:
            assert "hubs.build" in phases

    def test_engine_kernel_spans_only_under_profiler(self):
        # Unprofiled bundles must not pay for engine.* spans.
        plain = Telemetry()
        with use_telemetry(plain):
            serve(_grid(), ServingConfig(eps=1.0), Rng(seed=1))

        def walk(span):
            yield span.name
            for child in span.children:
                yield from walk(child)

        names = {
            name
            for root in plain.tracer.finished_roots()
            for name in walk(root)
        }
        assert not any(n.startswith("engine.") for n in names)

        profiler = PhaseProfiler(trace_allocations=False)
        profiled = Telemetry().with_profiler(profiler)
        with use_telemetry(profiled):
            serve(
                _grid(),
                ServingConfig(eps=1.0, backend="numpy"),
                Rng(seed=1),
                telemetry=profiled,
            )
        assert any(
            name.startswith("engine.") for name in profiler.phases()
        )


class TestFlightCapture:
    def test_injected_slow_query_captured(self, monkeypatch):
        flight = FlightRecorder(threshold_seconds=0.005)
        bundle = Telemetry().with_flight(flight)
        service = serve(
            _grid(), ServingConfig(eps=1.0), Rng(seed=5),
            telemetry=bundle,
        )
        synopsis = service.synopsis
        original = type(synopsis).distance

        def slow_distance(self, source, target):
            time.sleep(0.02)
            return original(self, source, target)

        monkeypatch.setattr(type(synopsis), "distance", slow_distance)
        value = service.query((0, 0), (4, 4))
        assert flight.captured >= 1
        record = flight.records()[-1]
        assert record["route"] == "point"
        assert record["pair"] == ["(0, 0)", "(4, 4)"]
        assert record["latency_seconds"] > record["threshold_seconds"]
        assert record["span"]["name"] == "query.point"
        assert record["phases"]["query.point"] > 0.0
        # And the answer is the mechanism's, untouched.
        monkeypatch.setattr(type(synopsis), "distance", original)
        assert service.query((0, 0), (4, 4)) == value  # synopsis cache

    def test_sharded_routes_labelled(self):
        flight = FlightRecorder(threshold_seconds=1e-9)
        bundle = Telemetry().with_flight(flight)
        service = serve(
            _grid(), ServingConfig(eps=1.0, shards=2), Rng(seed=6),
            telemetry=bundle,
        )
        pairs = [((0, 0), (0, 1)), ((0, 0), (4, 4))]
        for s, t in pairs:
            service.query(s, t)
        routes = {r["route"] for r in flight.records()}
        assert "cross" in routes or "intra" in routes
        assert routes <= {"intra", "cross"}

    def test_batch_queries_offered(self):
        flight = FlightRecorder(threshold_seconds=1e-9)
        bundle = Telemetry().with_flight(flight)
        service = serve(
            _grid(), ServingConfig(eps=1.0), Rng(seed=7),
            telemetry=bundle,
        )
        service.query_batch([((0, 0), (1, 1)), ((2, 2), (3, 3))])
        assert flight.considered == 2
        batch_records = [
            r for r in flight.records() if r["route"] == "batch"
        ]
        assert batch_records
        assert batch_records[0]["span"]["name"] == "batch.serve"


class TestEventLogIntegration:
    def test_lifecycle_events_with_span_correlation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        config = ServingConfig(eps=1.0, event_log=str(path))
        service = serve(_grid(), config, Rng(seed=8))
        service.refresh(_grid())
        service.query_batch([((0, 0), (1, 1))])
        service.telemetry.log.close()
        records = read_event_log(path)
        events = [r["event"] for r in records]
        assert events[0] == "log.open"
        assert "service.start" in events
        assert "synopsis.build" in events
        assert "epoch.refresh" in events
        assert "batch.serve" in events
        build = next(r for r in records if r["event"] == "synopsis.build")
        assert build["tenant"] == "distance-service"
        assert build["span_id"] is not None
        refresh = next(
            r for r in records if r["event"] == "epoch.refresh"
        )
        assert refresh["epoch"] == 1

    def test_sharded_lifecycle_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        config = ServingConfig(eps=1.0, shards=2, event_log=str(path))
        service = serve(_grid(), config, Rng(seed=9))
        service.refresh(_grid())
        service.refresh_shard(0)
        service.telemetry.log.close()
        records = read_event_log(path)
        events = [r["event"] for r in records]
        assert "shard.refresh" in events
        # Inner per-shard services log their own starts (shards=1);
        # the router's start carries the plan's shard count.
        shard_counts = [
            r["fields"]["shards"]
            for r in records
            if r["event"] == "service.start"
        ]
        assert 2 in shard_counts
