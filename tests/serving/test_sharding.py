"""Unit tests for :mod:`repro.serving.sharding` — the partitioner,
the plan artifact, and the sharded service with its boundary-hub
relays."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BudgetExceededError,
    PrivacyParams,
    Rng,
)
from repro.algorithms.shortest_paths import all_pairs_dijkstra
from repro.algorithms.traversal import is_connected
from repro.exceptions import (
    DisconnectedGraphError,
    GraphError,
    PrivacyError,
    VertexNotFoundError,
)
from repro.graphs import generators
from repro.serving import (
    DistanceService,
    ShardPlan,
    ShardedDistanceService,
    partition_graph,
)
from repro.workloads import grid_road_network, uniform_pairs


@pytest.fixture
def road():
    return grid_road_network(8, 8, Rng(21)).graph


class TestPartitionGraph:
    def test_balanced_connected_regions(self, road):
        plan = partition_graph(road, 4, seed=7)
        sizes = plan.shard_sizes()
        assert sum(sizes) == road.num_vertices
        assert min(sizes) >= 1
        for shard in range(4):
            assert is_connected(road.subgraph(plan.members(shard)))

    def test_deterministic_given_seed(self, road):
        a = partition_graph(road, 3, seed=5)
        b = partition_graph(road, 3, seed=5)
        assert a.assignment() == b.assignment()
        assert a.boundary == b.boundary
        assert a.cut_edges == b.cut_edges

    def test_boundary_is_exactly_cut_endpoints(self, road):
        plan = partition_graph(road, 3, seed=1)
        endpoints = set()
        for u, v in plan.cut_edges:
            assert plan.shard_of(u) != plan.shard_of(v)
            endpoints.update((u, v))
        assert set(plan.boundary) == endpoints

    def test_single_shard_has_no_cut(self, road):
        plan = partition_graph(road, 1, seed=0)
        assert plan.boundary == ()
        assert plan.cut_edges == ()
        assert plan.shard_sizes() == [road.num_vertices]

    def test_invalid_args(self, road):
        with pytest.raises(GraphError):
            partition_graph(road, 0)
        with pytest.raises(GraphError):
            partition_graph(road, road.num_vertices + 1)
        island = road.copy()
        island.add_vertex("island")
        with pytest.raises(DisconnectedGraphError):
            partition_graph(island, 2)


class TestShardPlan:
    def test_shard_of_unknown_vertex(self, road):
        plan = partition_graph(road, 2, seed=0)
        with pytest.raises(VertexNotFoundError):
            plan.shard_of("nowhere")

    def test_members_partition_vertices(self, road):
        plan = partition_graph(road, 3, seed=2)
        seen = set()
        for shard in range(3):
            members = plan.members(shard)
            assert all(plan.shard_of(v) == shard for v in members)
            seen.update(members)
        assert seen == set(road.vertices())
        with pytest.raises(GraphError):
            plan.members(3)

    def test_json_round_trip(self, road):
        plan = partition_graph(road, 3, seed=9)
        restored = ShardPlan.from_json(plan.to_json())
        assert restored.num_shards == 3
        assert restored.assignment() == plan.assignment()
        assert restored.boundary == plan.boundary
        assert restored.cut_edges == plan.cut_edges
        assert restored.seed == 9

    def test_empty_shard_rejected(self, road):
        assignment = {v: 0 for v in road.vertices()}
        with pytest.raises(GraphError):
            ShardPlan.from_assignment(road, assignment, num_shards=2)


class TestSingleShardEquivalence:
    """ISSUE acceptance: ``shards=1`` matches the unsharded service
    bit for bit under the same seed."""

    def test_queries_match_bit_for_bit(self):
        graph = grid_road_network(6, 6, Rng(9)).graph
        unsharded = DistanceService(graph, 1.0, Rng(42))
        sharded = ShardedDistanceService(graph, 1.0, Rng(42), shards=1)
        assert sharded.mechanism == unsharded.mechanism
        assert sharded.num_shards == 1
        assert sharded.relay is None
        for s, t in uniform_pairs(graph, 60, Rng(5)):
            assert sharded.query(s, t) == unsharded.query(s, t)

    def test_batches_match_bit_for_bit(self):
        graph = grid_road_network(5, 5, Rng(10)).graph
        unsharded = DistanceService(graph, 1.0, Rng(7))
        sharded = ShardedDistanceService(graph, 1.0, Rng(7), shards=1)
        pairs = uniform_pairs(graph, 40, Rng(8))
        a = unsharded.query_batch(pairs)
        b = sharded.query_batch(pairs)
        assert a.answers == b.answers
        assert a.num_unique == b.num_unique

    def test_refresh_matches_bit_for_bit(self):
        graph = grid_road_network(5, 5, Rng(11)).graph
        fresh = graph.with_weights(
            {e: w * 1.5 for e, w in graph.weights().items()}
        )
        unsharded = DistanceService(graph, 1.0, Rng(3))
        sharded = ShardedDistanceService(graph, 1.0, Rng(3), shards=1)
        unsharded.refresh(fresh)
        sharded.refresh(fresh)
        for s, t in uniform_pairs(graph, 30, Rng(4)):
            assert sharded.query(s, t) == unsharded.query(s, t)

    def test_full_budget_goes_to_the_single_tenant(self):
        graph = grid_road_network(4, 4, Rng(12)).graph
        sharded = ShardedDistanceService(
            graph, PrivacyParams(0.7, 1e-6), Rng(1), shards=1
        )
        assert sharded.shard_params == PrivacyParams(0.7, 1e-6)
        assert sharded.relay_params is None
        records = sharded.ledger.records()
        assert len(records) == 1
        assert records[0].params == PrivacyParams(0.7, 1e-6)


class TestCrossShardRouting:
    def test_near_noiseless_cross_answers_bracket_truth(self):
        """With a huge eps the relay estimate must be at least the
        true distance (triangle inequality on exact segments) and at
        most a small relay-detour factor above it."""
        graph = grid_road_network(8, 8, Rng(11)).graph
        service = ShardedDistanceService(
            graph, 1e9, Rng(13), shards=2, mechanism="hub-set"
        )
        plan = service.plan
        pairs = uniform_pairs(graph, 150, Rng(17))
        cross = [
            (s, t)
            for s, t in pairs
            if plan.shard_of(s) != plan.shard_of(t)
        ]
        assert cross  # the sample must exercise the relay path
        sweep = all_pairs_dijkstra(graph, sources=list({s for s, _ in cross}))
        for s, t in cross:
            true = sweep[s][t]
            answer = service.query(s, t)
            assert answer >= true - 1e-3
            assert answer <= 3.0 * true + 1e-3

    def test_intra_shard_capped_by_owning_synopsis(self, road):
        """Intra answers are the min of the owning shard's synopsis
        and the relay decomposition through the shard's own boundary
        (a border pair's corridor may leave the shard), so they can
        only improve on the induced-subgraph estimate."""
        service = ShardedDistanceService(
            road, 1.0, Rng(19), shards=2, mechanism="hub-set"
        )
        plan = service.plan
        for shard in range(2):
            members = plan.members(shard)
            s, t = members[0], members[-1]
            direct = service.shard_services[shard].synopsis.distance(s, t)
            assert service.query(s, t) <= direct

    def test_intra_relay_cap_beats_subgraph_detour(self):
        """Near-noiseless: an intra-shard pair whose true corridor
        dips into the neighboring shard must not be stuck with the
        induced-subgraph detour — answers stay within the same detour
        bracket as cross pairs."""
        graph = grid_road_network(8, 8, Rng(11)).graph
        service = ShardedDistanceService(
            graph, 1e9, Rng(13), shards=2, mechanism="hub-set"
        )
        plan = service.plan
        pairs = [
            (s, t)
            for s, t in uniform_pairs(graph, 150, Rng(18))
            if plan.shard_of(s) == plan.shard_of(t)
        ]
        assert pairs
        sweep = all_pairs_dijkstra(graph, sources=list({s for s, _ in pairs}))
        for s, t in pairs:
            true = sweep[s][t]
            answer = service.query(s, t)
            assert answer >= true - 1e-3
            assert answer <= 3.0 * true + 1e-3

    def test_cross_shard_estimate_matches_manual_relay_min(self, road):
        """The routed answer must equal the decomposition
        ``min d_i(s, b_s) + relay(b_s, b_t) + d_j(b_t, t)`` computed
        by hand from the released pieces."""
        service = ShardedDistanceService(
            road, 1.0, Rng(23), shards=2, mechanism="hub-set"
        )
        plan = service.plan
        s = plan.members(0)[0]
        t = plan.members(1)[0]
        relay = service.relay
        site_of = {v: p for p, v in enumerate(plan.boundary)}
        best = float("inf")
        for a in plan.boundary:
            if plan.shard_of(a) != 0:
                continue
            da = service.shard_services[0].synopsis.distance(s, a)
            for b in plan.boundary:
                if plan.shard_of(b) != 1:
                    continue
                db = service.shard_services[1].synopsis.distance(t, b)
                mid = relay.estimate(site_of[a], site_of[b])
                best = min(best, da + mid + db)
        expected = max(best, 0.0)
        # estimate() clamps relay legs at 0 individually; the routed
        # answer uses the raw relay min, so it can only be tighter.
        assert service.query(s, t) <= expected + 1e-9

    def test_cross_and_point_queries_share_cache(self, road):
        service = ShardedDistanceService(road, 1.0, Rng(29), shards=2)
        plan = service.plan
        s, t = plan.members(0)[0], plan.members(1)[0]
        first = service.query(s, t)
        assert service.query(t, s) == first
        assert service.stats.cache_hits == 1
        report = service.query_batch([(s, t), (t, s)])
        assert report.answers == [first, first]
        assert report.cache_hits == 1  # one distinct pair, cached
        assert report.num_unique == 1

    def test_query_unknown_vertex(self, road):
        service = ShardedDistanceService(road, 1.0, Rng(31), shards=2)
        with pytest.raises(VertexNotFoundError):
            service.query("nowhere", plan_member(service, 0))


def plan_member(service: ShardedDistanceService, shard: int):
    return service.plan.members(shard)[0]


class TestBudgetAccounting:
    def test_budget_split_and_tenants(self, road):
        service = ShardedDistanceService(
            road, PrivacyParams(1.0, 1e-6), Rng(33), shards=3
        )
        assert service.shard_params == PrivacyParams(0.5, 5e-7)
        assert service.relay_params == PrivacyParams(0.5, 5e-7)
        tenants = set(service.ledger.tenants)
        assert tenants == {
            "sharded-distance-service/shard-0",
            "sharded-distance-service/shard-1",
            "sharded-distance-service/shard-2",
            "sharded-distance-service/relay",
        }
        assert len(service.ledger.records()) == 4

    def test_shard_tenant_fails_closed_on_exhaustion(self, road):
        """ISSUE acceptance: per-shard-tenant budget exhaustion fails
        closed — the dead shard refuses, the others keep serving."""
        service = ShardedDistanceService(
            road, 1.0, Rng(35), shards=2, mechanism="hub-set"
        )
        service.refresh_shard(0)  # shard-0 at 1.0, relay at 1.0
        records = len(service.ledger.records())
        with pytest.raises(BudgetExceededError):
            service.refresh_shard(0)  # 1.5 > 1.0: refused pre-noise
        assert len(service.ledger.records()) == records
        s1 = service.plan.members(1)
        assert isinstance(service.query(s1[0], s1[1]), float)
        s0 = service.plan.members(0)
        with pytest.raises(PrivacyError):
            service.query(s0[0], s0[1])

    def test_relay_failure_keeps_intra_serving(self, road):
        service = ShardedDistanceService(
            road, 1.0, Rng(37), shards=2, mechanism="hub-set"
        )
        service.refresh_shard(0)  # relay tenant now at its cap
        with pytest.raises(BudgetExceededError):
            service.refresh_shard(1)  # shard-1 ok, relay spend refused
        assert service.relay is None
        s0, s1 = service.plan.members(0), service.plan.members(1)
        assert isinstance(service.query(s0[0], s0[1]), float)
        assert isinstance(service.query(s1[0], s1[1]), float)
        with pytest.raises(PrivacyError):
            service.query(s0[0], s1[0])
        # A full refresh (epoch rotation) restores cross-shard serving.
        service.refresh()
        assert isinstance(service.query(s0[0], s1[0]), float)

    def test_invalid_relay_fraction(self, road):
        with pytest.raises(PrivacyError):
            ShardedDistanceService(
                road, 1.0, Rng(39), shards=2, relay_fraction=1.0
            )


class TestRegionalRefresh:
    def test_refresh_rebuilds_only_target_shard(self, road):
        service = ShardedDistanceService(
            road, 1.0, Rng(41), shards=2, mechanism="hub-set"
        )
        plan = service.plan
        untouched = service.shard_services[1].synopsis
        weights = road.weights()
        for (u, v), w in list(weights.items()):
            if plan.shard_of(u) == plan.shard_of(v) == 0:
                weights[(u, v)] = w * 1.4
        service.refresh_shard(0, weights)
        # Shard 1's synopsis object is untouched; shard 0's is new.
        assert service.shard_services[1].synopsis is untouched
        assert service.stats.shard_refreshes == 1
        assert service.shard_services[0].stats.epochs_built == 2
        assert service.shard_services[1].stats.epochs_built == 1

    def test_non_regional_update_rejected_before_spending(self, road):
        service = ShardedDistanceService(
            road, 1.0, Rng(43), shards=2, mechanism="hub-set"
        )
        plan = service.plan
        records = len(service.ledger.records())
        weights = road.weights()
        for (u, v), w in list(weights.items()):
            if plan.shard_of(u) == plan.shard_of(v) == 1:
                weights[(u, v)] = w + 1.0
                break
        with pytest.raises(GraphError):
            service.refresh_shard(0, weights)
        assert len(service.ledger.records()) == records

    def test_cut_edge_updates_are_regional(self, road):
        service = ShardedDistanceService(
            road, 1.0, Rng(45), shards=2, mechanism="hub-set"
        )
        weights = road.weights()
        u, v = service.plan.cut_edges[0]
        weights[service.plan.cut_edges[0]] = weights[(u, v)] + 0.5
        service.refresh_shard(0, weights)  # must not raise
        assert service.stats.shard_refreshes == 1

    def test_bad_shard_id(self, road):
        service = ShardedDistanceService(road, 1.0, Rng(47), shards=2)
        with pytest.raises(GraphError):
            service.refresh_shard(2)


class TestConstruction:
    def test_needs_shards_or_plan(self, road):
        with pytest.raises(GraphError):
            ShardedDistanceService(road, 1.0, Rng(49))

    def test_explicit_plan(self, road):
        plan = partition_graph(road, 2, seed=3)
        service = ShardedDistanceService(road, 1.0, Rng(51), plan=plan)
        assert service.plan is plan
        with pytest.raises(GraphError):
            ShardedDistanceService(
                road, 1.0, Rng(53), shards=3, plan=plan
            )

    def test_mechanism_label(self, road):
        service = ShardedDistanceService(
            road, 1.0, Rng(55), shards=2, mechanism="hub-set"
        )
        assert service.mechanism == "sharded(2xhub-set+relay)"

    def test_simulate_accepts_shards(self):
        from repro.serving import replay_rush_hour

        report = replay_rush_hour(
            Rng(57), rows=6, cols=6, eps=1.0, epochs=2,
            queries_per_epoch=40, shards=2,
        )
        assert report.total_queries == 80
        assert report.mechanism.startswith("sharded(2x")
        # Two epochs x (2 shard tenants + relay) = 6 ledger spends.
        assert report.ledger_spends == 6
