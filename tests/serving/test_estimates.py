"""Unit tests for the rich estimate path: :class:`repro.Estimate`,
per-synopsis noise scales, confidence-interval calibration, and the
``SynopsisError`` regression."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro import (
    DistanceService,
    Estimate,
    PrivacyParams,
    ReproError,
    Rng,
    ServingConfig,
    SynopsisError,
    serve,
    synopsis_from_json,
)
from repro.algorithms.shortest_paths import all_pairs_dijkstra
from repro.exceptions import GraphError, PrivacyError
from repro.graphs import generators
from repro.mechanisms import MechanismParams, get_mechanism
from repro.serving import build_single_pair_synopsis
from repro.workloads import grid_road_network


class TestEstimateType:
    def test_query_equals_estimate_value(self, rng):
        grid = generators.grid_graph(4, 4)
        service = DistanceService(grid, 1.0, rng)
        estimate = service.estimate((0, 0), (3, 3))
        assert service.query((0, 0), (3, 3)) == estimate.value
        assert estimate.mechanism == service.mechanism
        assert estimate.epoch == 0
        assert estimate.noise_scale > 0

    def test_confidence_interval_laplace_quantile(self):
        estimate = Estimate(
            value=10.0, noise_scale=2.0, mechanism="test", epoch=0
        )
        lo, hi = estimate.confidence_interval(0.9)
        half = 2.0 * math.log(10.0)  # b ln(1/(1-level))
        assert lo == pytest.approx(10.0 - half)
        assert hi == pytest.approx(10.0 + half)
        assert estimate.margin(0.9) == pytest.approx(half)

    def test_interval_widens_with_level(self):
        estimate = Estimate(
            value=0.0, noise_scale=1.0, mechanism="test", epoch=0
        )
        assert estimate.margin(0.99) > estimate.margin(0.9)

    def test_zero_scale_degenerate_interval(self):
        estimate = Estimate(
            value=3.0, noise_scale=0.0, mechanism="test", epoch=0
        )
        assert estimate.confidence_interval(0.95) == (3.0, 3.0)

    def test_invalid_level_rejected(self):
        estimate = Estimate(
            value=0.0, noise_scale=1.0, mechanism="test", epoch=0
        )
        for level in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(PrivacyError):
                estimate.confidence_interval(level)

    def test_estimate_batch_aligns_with_input(self, rng):
        grid = generators.grid_graph(4, 4)
        service = DistanceService(grid, 1.0, rng)
        pairs = [((0, 0), (3, 3)), ((1, 1), (2, 2)), ((0, 0), (3, 3))]
        estimates = service.estimate_batch(pairs)
        assert len(estimates) == 3
        assert estimates[0].value == estimates[2].value  # deduped pair
        report = service.query_batch(pairs)
        assert [e.value for e in estimates] == report.answers

    def test_epoch_tracks_refresh(self, rng):
        grid = generators.grid_graph(3, 3)
        service = DistanceService(grid, 1.0, rng)
        assert service.estimate((0, 0), (2, 2)).epoch == 0
        service.refresh()
        assert service.estimate((0, 0), (2, 2)).epoch == 1


class TestNoiseScalePerMechanism:
    """The acceptance bar: ``estimate().noise_scale`` is nonzero for
    every registered mechanism."""

    def test_every_standalone_mechanism_reports_nonzero_scale(self, rng):
        grid = generators.grid_graph(4, 4)
        big = generators.grid_graph(8, 8)
        tree = generators.random_tree(10, rng)
        # The covering mechanisms get a budget generous enough for a
        # multi-site covering: at eps=1 their optimal radius spans the
        # whole 8x8 grid, every answer is a deterministic same-site 0,
        # and a 0 noise scale is the honest report.
        cases = [
            ("tree", tree, 1.0, {}),
            ("bounded-weight", big, 10.0, {"weight_bound": 1.0}),
            ("hub-bounded", big, 10.0, {"weight_bound": 1.0}),
            ("all-pairs-basic", grid, 1.0, {}),
            ("hub-set", grid, 1.0, {}),
        ]
        for name, graph, eps, kwargs in cases:
            service = DistanceService(
                graph, eps, rng, mechanism=name, **kwargs
            )
            # Covering mechanisms answer same-site pairs with a
            # deterministic 0 (honestly scale 0), so probe for a pair
            # backed by a released value.
            estimate = next(
                e
                for s, t in itertools.combinations(
                    graph.vertices(), 2
                )
                for e in [service.estimate(s, t)]
                if e.noise_scale > 0.0
            )
            assert estimate.noise_scale > 0.0, name
            assert estimate.mechanism == name
        advanced = DistanceService(
            grid,
            PrivacyParams(1.0, 1e-6),
            rng,
            mechanism="all-pairs-advanced",
        )
        assert advanced.estimate((0, 0), (3, 3)).noise_scale > 0.0

    def test_single_pair_synopsis_scale(self, rng):
        grid = generators.grid_graph(4, 4)
        pairs = [((0, 0), (3, 3)), ((1, 1), (2, 2))]
        synopsis = build_single_pair_synopsis(grid, pairs, 0.5, rng)
        assert synopsis.noise_scale == pytest.approx(2 / 0.5)
        assert synopsis.noise_scale_for(*pairs[0]) == synopsis.noise_scale

    def test_boundary_relay_scale(self, rng):
        grid = generators.grid_graph(4, 4)
        sites = tuple(grid.vertices())[:6]
        synopsis = get_mechanism("boundary-relay").build(
            grid,
            MechanismParams(budget=PrivacyParams(1.0), sites=sites),
            rng,
        )
        assert synopsis.noise_scale > 0.0
        assert synopsis.noise_scale_for(sites[0], sites[1]) > 0.0

    def test_identical_pair_reports_zero_scale(self, rng):
        """Regression: ``distance(v, v)`` is a deterministic 0 for
        every synopsis, so its estimate must carry scale 0 and a
        degenerate confidence interval — not the per-entry scale."""
        grid = generators.grid_graph(4, 4)
        for mechanism in ("all-pairs-basic", "hub-set"):
            service = DistanceService(
                grid, 1.0, Rng(11), mechanism=mechanism
            )
            estimate = service.estimate((1, 1), (1, 1))
            assert estimate.value == 0.0
            assert estimate.noise_scale == 0.0
            assert estimate.confidence_interval(0.95) == (0.0, 0.0)
        tree = generators.random_tree(12, Rng(12))
        estimate = DistanceService(tree, 1.0, Rng(13)).estimate(0, 0)
        assert estimate.noise_scale == 0.0
        sharded = serve(
            grid_road_network(6, 6, Rng(14)).graph,
            ServingConfig(eps=1.0, shards=2),
            Rng(15),
        )
        estimate = sharded.estimate((0, 0), (0, 0))
        assert estimate.value == 0.0
        assert estimate.noise_scale == 0.0

    def test_bounded_weight_same_site_reports_zero_scale(self, rng):
        """Pairs sharing a covering site answer a deterministic 0.

        eps=10 keeps the 8x8 covering multi-site, so both the
        same-site and released-pair branches exist.
        """
        grid = generators.grid_graph(8, 8)
        service = DistanceService(
            grid, 10.0, rng, weight_bound=1.0,
            mechanism="bounded-weight",
        )
        synopsis = service.synopsis
        assignment = synopsis._assignment
        same_site = next(
            (u, v)
            for u, v in itertools.combinations(assignment, 2)
            if assignment[u] == assignment[v]
        )
        assert synopsis.distance(*same_site) == 0.0
        assert synopsis.noise_scale_for(*same_site) == 0.0
        diff_site = next(
            (u, v)
            for u, v in itertools.combinations(assignment, 2)
            if assignment[u] != assignment[v]
        )
        assert synopsis.noise_scale_for(*diff_site) == (
            synopsis.noise_scale
        )

    def test_hub_composed_vs_ball_scales(self, rng):
        """The ISSUE contract: hub synopses report the composed relay
        scale (2x per-entry) unless a local-ball entry actually won
        ``estimate()``'s min, in which case the direct scale."""
        graph = generators.grid_graph(6, 6)
        service = DistanceService(graph, 1.0, rng, mechanism="hub-set")
        synopsis = service.synopsis
        structure = synopsis.structure
        m = structure.num_sites
        order = sorted(
            synopsis.vertices, key=lambda v: synopsis._site(v)
        )
        seen = set()
        for i, j in itertools.combinations(range(m), 2):
            direct = structure.ball.get(i * m + j)
            relay_min = float(
                np.min(structure.matrix[:, i] + structure.matrix[:, j])
            )
            ball_won = direct is not None and direct < relay_min
            expected = (
                structure.noise_scale
                if ball_won
                else 2.0 * structure.noise_scale
            )
            assert synopsis.noise_scale_for(
                order[i], order[j]
            ) == pytest.approx(expected)
            seen.add(ball_won)
        assert seen == {True, False}  # both branches exercised
        assert synopsis.noise_scale_for(order[0], order[0]) == 0.0

    def test_ball_covered_pair_served_by_relay_reports_composed_scale(
        self,
    ):
        """Regression: a ball entry that *loses* ``estimate()``'s min
        must not halve the advertised scale."""
        from repro.apsp.hubs import HubStructure

        matrix = np.array([[0.0, 1.0, 1.0]])  # one hub, three sites
        structure = HubStructure(
            num_sites=3,
            hub_positions=np.array([0]),
            matrix=matrix,
            # Ball covers (1, 2) with a value above the relay min (2.0)
            # and (0, 1) with one below its relay min (1.0).
            ball={1 * 3 + 2: 5.0, 0 * 3 + 1: 0.25},
            noise_scale=1.0,
            pair_count=3,
        )
        assert structure.estimate(1, 2) == 2.0  # relay won
        assert structure.scale_for(1, 2) == 2.0
        assert structure.estimate(0, 1) == 0.25  # ball won
        assert structure.scale_for(0, 1) == 1.0

    def test_scales_survive_json_round_trip(self, rng):
        grid = generators.grid_graph(4, 4)
        tree = generators.random_tree(10, rng)
        services = [
            DistanceService(tree, 1.0, rng),
            DistanceService(grid, 1.0, rng),
            DistanceService(grid, 1.0, rng, weight_bound=1.0),
            DistanceService(grid, 1.0, rng, mechanism="hub-set"),
        ]
        for service in services:
            restored = synopsis_from_json(service.synopsis.to_json())
            assert restored.noise_scale == pytest.approx(
                service.synopsis.noise_scale
            ), service.mechanism

    def test_sharded_estimates_compose_relay_scale(self):
        network = grid_road_network(8, 8, Rng(400))
        service = serve(
            network.graph,
            ServingConfig(eps=1.0, shards=2),
            Rng(401),
        )
        plan = service.plan
        vertices = list(network.graph.vertices())
        cross = intra = None
        for s in vertices:
            for t in vertices:
                if s == t:
                    continue
                if plan.shard_of(s) != plan.shard_of(t):
                    cross = cross or (s, t)
                else:
                    intra = intra or (s, t)
        cross_est = service.estimate(*cross)
        assert cross_est.value == service.query(*cross)
        relay_scale = service.relay.noise_scale
        # Composed chain: both shard legs plus the two-entry relay.
        assert cross_est.noise_scale > 2.0 * relay_scale
        intra_est = service.estimate(*intra)
        assert intra_est.noise_scale > 0.0


class TestConfidenceCalibration:
    """The satellite bar: empirical coverage of
    ``Estimate.confidence_interval`` within ±3% of nominal at 90%/95%
    over 2000 seeded draws (exact for single-Laplace answers)."""

    def test_all_pairs_coverage(self):
        graph = generators.grid_graph(8, 8)  # 64 vertices, 2016 pairs
        service = serve(
            graph,
            ServingConfig(eps=1.0, mechanism="all-pairs-basic"),
            Rng(20160640),
        )
        vertices = list(graph.vertices())
        pairs = list(itertools.combinations(vertices, 2))[:2000]
        assert len(pairs) == 2000
        sweep = all_pairs_dijkstra(graph)
        estimates = service.estimate_batch(pairs)
        for level in (0.90, 0.95):
            covered = sum(
                1
                for (s, t), estimate in zip(pairs, estimates)
                if estimate.confidence_interval(level)[0]
                <= sweep[s][t]
                <= estimate.confidence_interval(level)[1]
            )
            coverage = covered / len(pairs)
            assert abs(coverage - level) <= 0.03, (level, coverage)


class TestSynopsisError:
    def test_unknown_kind_raises_typed_error(self):
        import json as _json

        document = _json.dumps(
            {
                "format": "repro-synopsis",
                "version": 1,
                "kind": "wormhole",
                "eps": 1.0,
                "delta": 0.0,
            }
        )
        with pytest.raises(SynopsisError) as excinfo:
            synopsis_from_json(document)
        message = str(excinfo.value)
        assert "wormhole" in message
        # The typed error lists the registered kinds.
        for kind in ("tree", "all-pairs", "hub-set"):
            assert kind in message

    def test_synopsis_error_hierarchy(self):
        assert issubclass(SynopsisError, GraphError)
        assert issubclass(SynopsisError, ReproError)

    def test_bad_format_and_version_are_synopsis_errors(self):
        import json as _json

        with pytest.raises(SynopsisError):
            synopsis_from_json(_json.dumps({"format": "other"}))
        with pytest.raises(SynopsisError):
            synopsis_from_json(
                _json.dumps({"format": "repro-synopsis", "version": 9})
            )
