"""Unit tests for :mod:`repro.serving.batching`."""

from __future__ import annotations

import pytest

from repro import AllPairsBasicRelease, Rng
from repro.graphs import generators
from repro.serving import AllPairsSynopsis, BatchPlanner, fresh_batch
from repro.serving.synopsis import canonical_pair


@pytest.fixture
def synopsis(rng):
    graph = generators.grid_graph(4, 4)
    return AllPairsSynopsis.from_release(
        AllPairsBasicRelease(graph, 1.0, rng)
    )


class TestBatchPlanner:
    def test_answers_align_with_input(self, synopsis):
        planner = BatchPlanner(synopsis)
        pairs = [((0, 0), (3, 3)), ((1, 1), (2, 2)), ((0, 0), (3, 3))]
        report = planner.run(pairs)
        assert len(report.answers) == 3
        assert report.answers[0] == report.answers[2]
        assert report.answers == [
            synopsis.distance(s, t) for s, t in pairs
        ]

    def test_dedupes_unordered_pairs(self, synopsis):
        planner = BatchPlanner(synopsis)
        report = planner.run([((0, 0), (3, 3)), ((3, 3), (0, 0))])
        assert report.num_queries == 2
        assert report.num_unique == 1
        assert report.answers[0] == report.answers[1]

    def test_cache_shared_across_batches(self, synopsis):
        cache = {}
        planner = BatchPlanner(synopsis, cache=cache)
        first = planner.run([((0, 0), (1, 1))])
        assert first.cache_hits == 0
        second = planner.run([((1, 1), (0, 0))])
        assert second.cache_hits == 1
        assert canonical_pair((0, 0), (1, 1)) in cache

    def test_report_metrics(self, synopsis):
        report = BatchPlanner(synopsis).run(
            [((0, 0), (i, j)) for i in range(4) for j in range(4)]
        )
        assert report.num_queries == 16
        assert report.elapsed_seconds >= 0.0
        assert report.queries_per_second >= 0.0

    def test_empty_batch(self, synopsis):
        report = BatchPlanner(synopsis).run([])
        assert report.answers == []
        assert report.queries_per_second == 0.0

    def test_num_unique_is_distinct_pair_count_with_cache_hits(
        self, synopsis
    ):
        """Regression: ``num_unique`` must be the batch's true
        distinct-pair count even when some of those pairs are served
        from the cross-batch cache, with cache hits reported in their
        own counter (they used to be folded into ``num_unique``)."""
        cache = {}
        planner = BatchPlanner(synopsis, cache=cache)
        planner.run([((0, 0), (1, 1)), ((0, 0), (2, 2))])
        report = planner.run(
            [
                ((0, 0), (1, 1)),  # cached by the earlier batch
                ((1, 1), (0, 0)),  # in-batch duplicate of the above
                ((0, 0), (2, 2)),  # cached by the earlier batch
                ((0, 0), (3, 3)),  # fresh
                ((3, 3), (0, 0)),  # in-batch duplicate of the fresh
            ]
        )
        assert report.num_queries == 5
        assert report.num_unique == 3  # the distinct unordered pairs
        assert report.cache_hits == 2  # pairs an earlier batch resolved


class TestFreshBatch:
    def test_one_vectorized_release_serves_whole_batch(self, rng):
        graph = generators.grid_graph(4, 4)
        pairs = [((0, 0), (3, 3)), ((0, 0), (1, 2)), ((3, 3), (0, 0))]
        synopsis, report = fresh_batch(graph, pairs, 1.0, rng)
        assert report.num_queries == 3
        assert len(report.answers) == 3
        assert report.answers[0] == report.answers[2]
        # The synopsis can re-serve the workload for free afterwards.
        assert synopsis.distance((0, 0), (3, 3)) == report.answers[0]
        assert synopsis.params.eps == 1.0

    def test_deterministic_given_seed(self):
        graph = generators.grid_graph(3, 3)
        pairs = [((0, 0), (2, 2)), ((0, 1), (2, 0))]
        _, a = fresh_batch(graph, pairs, 1.0, Rng(5))
        _, b = fresh_batch(graph, pairs, 1.0, Rng(5))
        assert a.answers == b.answers

    def test_build_time_reported_separately_from_serving(self, rng):
        """Regression: the one-time release build must land in
        ``build_seconds``, not in ``elapsed_seconds`` — folding it
        into the serving wall-clock silently deflated
        ``queries_per_second``."""
        graph = generators.grid_graph(6, 6)
        pairs = [((0, 0), (5, 5)), ((0, 0), (3, 3)), ((2, 2), (4, 4))]
        _, report = fresh_batch(graph, pairs, 1.0, rng)
        assert report.build_seconds > 0.0
        assert report.elapsed_seconds >= 0.0
        if report.elapsed_seconds > 0.0:
            assert report.queries_per_second == pytest.approx(
                report.num_queries / report.elapsed_seconds
            )

    def test_standing_synopsis_batches_report_zero_build(self, synopsis):
        report = BatchPlanner(synopsis).run([((0, 0), (1, 1))])
        assert report.build_seconds == 0.0
