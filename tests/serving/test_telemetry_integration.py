"""Telemetry integration across the serving stack: observational
purity (bit-identical answers on/off), the ServiceStats compatibility
view, budget gauges, spans, and the replay's latency quantiles."""

from __future__ import annotations

import pytest

from repro import (
    NULL_TELEMETRY,
    Rng,
    ServingConfig,
    Telemetry,
    replay_rush_hour,
    serve,
    set_default_telemetry,
    use_telemetry,
)
from repro.graphs import generators
from repro.serving.service import ServiceStats


def _grid(rows=5, cols=5):
    return generators.grid_graph(rows, cols)


def _answers(telemetry, shards=1):
    """All visible outputs of a fixed seeded serving session."""
    config = ServingConfig(eps=1.0, shards=shards)
    service = serve(_grid(), config, Rng(seed=42), telemetry=telemetry)
    pairs = [((0, 0), (4, 4)), ((1, 2), (3, 0)), ((0, 0), (4, 4))]
    point = service.query((0, 1), (4, 3))
    batch = service.query_batch(pairs)
    estimate = service.estimate((2, 2), (0, 4))
    return (point, tuple(batch.answers), estimate.value, estimate.noise_scale)


class TestObservationalPurity:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_bit_identical_on_off_and_custom(self, shards):
        # Telemetry must never touch the noise stream: the default
        # bundle, the null bundle, and an injected private bundle all
        # produce byte-for-byte identical released values.
        baseline = _answers(None, shards=shards)
        assert _answers(NULL_TELEMETRY, shards=shards) == baseline
        assert _answers(Telemetry(), shards=shards) == baseline

    @pytest.mark.parametrize("shards", [1, 2])
    def test_config_disabled_also_identical(self, shards):
        baseline = _answers(None, shards=shards)
        config = ServingConfig(eps=1.0, shards=shards, telemetry=False)
        service = serve(_grid(), config, Rng(seed=42))
        assert not service.telemetry.enabled
        pairs = [((0, 0), (4, 4)), ((1, 2), (3, 0)), ((0, 0), (4, 4))]
        point = service.query((0, 1), (4, 3))
        batch = service.query_batch(pairs)
        estimate = service.estimate((2, 2), (0, 4))
        assert (
            point,
            tuple(batch.answers),
            estimate.value,
            estimate.noise_scale,
        ) == baseline

    def test_config_disabled_wins_over_injected_bundle(self):
        bundle = Telemetry()
        config = ServingConfig(eps=1.0, telemetry=False)
        service = serve(_grid(), config, Rng(seed=0), telemetry=bundle)
        service.query((0, 0), (1, 1))
        assert not service.telemetry.enabled
        assert bundle.registry.metrics() == []


class TestServiceStatsView:
    def test_as_dict_byte_identical_shape(self):
        # Regression pin: the compatibility view must keep the exact
        # historical key set and order of ServiceStats.as_dict().
        telemetry = Telemetry()
        config = ServingConfig(eps=1.0)
        service = serve(_grid(), config, Rng(seed=1), telemetry=telemetry)
        service.query((0, 0), (1, 1))
        service.query((0, 0), (1, 1))  # cache hit
        # One fresh unique pair: the in-batch duplicate is deduplicated,
        # which is neither a cache hit nor a miss.
        service.query_batch([((0, 0), (2, 2)), ((0, 0), (2, 2))])
        stats = service.stats.as_dict()
        assert stats == {
            "num_queries": 4,
            "point_queries": 2,
            "batch_queries": 2,
            "batches": 1,
            "cache_hits": 1,
            "epochs_built": 1,
            "shard_refreshes": 0,
        }
        assert list(stats) == [
            "num_queries",
            "point_queries",
            "batch_queries",
            "batches",
            "cache_hits",
            "epochs_built",
            "shard_refreshes",
        ]

    def test_counters_live_in_registry_not_parallel_books(self):
        telemetry = Telemetry()
        stats = ServiceStats(telemetry=telemetry, tenant="t")
        stats.record_point_query(cache_hit=True)
        by_name = {
            m.name: m.value
            for m in telemetry.registry.metrics()
            if m.kind == "counter"
        }
        assert by_name["serving.stats.point_queries"] == 1
        assert by_name["serving.stats.cache_hits"] == 1
        assert stats.point_queries == 1
        assert stats.cache_hits == 1

    def test_detached_stats_still_count_without_telemetry(self):
        stats = ServiceStats(telemetry=NULL_TELEMETRY)
        stats.record_point_query(cache_hit=False)
        stats.record_epoch_built()
        assert stats.num_queries == 1
        assert stats.epochs_built == 1

    def test_two_services_do_not_collide(self):
        # instance labels keep per-service counters separate even for
        # equal tenant names in the same registry.
        telemetry = Telemetry()
        config = ServingConfig(eps=1.0)
        a = serve(_grid(), config, Rng(seed=1), telemetry=telemetry)
        b = serve(_grid(), config, Rng(seed=2), telemetry=telemetry)
        a.query((0, 0), (1, 1))
        assert a.stats.num_queries == 1
        assert b.stats.num_queries == 0


class TestMetricsAndSpans:
    def test_query_latency_and_build_metrics_recorded(self):
        telemetry = Telemetry()
        config = ServingConfig(eps=1.0)
        service = serve(_grid(), config, Rng(seed=3), telemetry=telemetry)
        service.query((0, 0), (4, 4))
        service.query_batch([((0, 0), (1, 1)), ((2, 2), (3, 3))])
        latency = telemetry.registry.merged_histogram(
            "serving.query.latency"
        )
        assert latency.count == 3
        build = telemetry.registry.merged_histogram("build.latency")
        assert build.count == 1
        names = {m.name for m in telemetry.registry.metrics()}
        assert "serving.batch.latency" in names
        assert "mechanism.selected" in names

    def test_budget_gauges_per_tenant(self):
        telemetry = Telemetry()
        config = ServingConfig(eps=1.0, delta=1e-6)
        service = serve(_grid(), config, Rng(seed=4), telemetry=telemetry)
        gauges = {
            (m.name, dict(m.labels)["tenant"]): m.value
            for m in telemetry.registry.metrics()
            if m.name.startswith("budget.") and m.kind == "gauge"
        }
        tenant = service.ledger.records()[0].tenant
        assert gauges[("budget.eps.spent", tenant)] == pytest.approx(1.0)
        assert gauges[("budget.eps.remaining", tenant)] == pytest.approx(
            0.0
        )
        assert gauges[
            ("budget.delta.remaining", tenant)
        ] == pytest.approx(0.0, abs=1e-12)

    def test_sharded_budget_gauges_cover_all_tenants(self):
        telemetry = Telemetry()
        config = ServingConfig(eps=1.0, shards=2)
        service = serve(_grid(), config, Rng(seed=5), telemetry=telemetry)
        tenants = {
            dict(m.labels)["tenant"]
            for m in telemetry.registry.metrics()
            if m.name == "budget.eps.spent"
        }
        ledger_tenants = {e.tenant for e in service.ledger.records()}
        assert tenants == ledger_tenants
        assert len(tenants) >= 3  # two shards + the boundary relay

    def test_epoch_refresh_span_nests_build(self):
        telemetry = Telemetry()
        config = ServingConfig(eps=1.0)
        service = serve(_grid(), config, Rng(seed=6), telemetry=telemetry)
        telemetry.tracer.clear()
        service.refresh(_grid())
        roots = telemetry.tracer.finished_roots()
        assert [s.name for s in roots] == ["epoch.refresh"]
        child_names = {c.name for c in roots[0].children}
        assert "synopsis.build" in child_names

    def test_budget_spend_events_traced(self):
        telemetry = Telemetry()
        config = ServingConfig(eps=1.0)
        serve(_grid(), config, Rng(seed=7), telemetry=telemetry)
        spends = [
            span
            for root in telemetry.tracer.finished_roots()
            for span in [root, *root.children]
            if span.name == "budget.spend"
        ]
        assert len(spends) == 1
        assert spends[0].attributes["eps"] == pytest.approx(1.0)

    def test_default_bundle_capture(self):
        # serve(telemetry=None) records into the active process
        # bundle, honoring use_telemetry scopes.
        scoped = Telemetry()
        with use_telemetry(scoped):
            service = serve(_grid(), ServingConfig(eps=1.0), Rng(seed=8))
            service.query((0, 0), (1, 1))
        assert (
            scoped.registry.merged_histogram(
                "serving.query.latency"
            ).count
            == 1
        )

    def test_set_default_telemetry_round_trip(self):
        mine = Telemetry()
        previous = set_default_telemetry(mine)
        try:
            service = serve(_grid(), ServingConfig(eps=1.0), Rng(seed=9))
            service.query((0, 0), (1, 1))
            assert (
                mine.registry.merged_histogram(
                    "serving.query.latency"
                ).count
                == 1
            )
        finally:
            set_default_telemetry(previous)


class TestReplayLatency:
    def test_simulate_reports_latency_quantiles(self, rng):
        report = replay_rush_hour(
            rng, rows=5, cols=5, epochs=1, queries_per_epoch=40
        )
        assert report.latency["count"] == 40
        assert (
            0.0
            <= report.latency["p50"]
            <= report.latency["p95"]
            <= report.latency["p99"]
        )
        assert report.as_dict()["latency_seconds"] == report.latency

    def test_disabled_config_reports_no_latency(self, rng):
        config = ServingConfig(eps=1.0, telemetry=False)
        report = replay_rush_hour(
            rng, epochs=1, queries_per_epoch=20, config=config,
            rows=5, cols=5,
        )
        assert report.latency == {}

    def test_private_bundle_per_replay(self, rng):
        # Two replays must not leak latency observations into each
        # other through a shared global registry.
        first = replay_rush_hour(
            rng, rows=5, cols=5, epochs=1, queries_per_epoch=10
        )
        second = replay_rush_hour(
            rng, rows=5, cols=5, epochs=1, queries_per_epoch=25
        )
        assert first.latency["count"] == 10
        assert second.latency["count"] == 25
