"""Unit tests for :mod:`benchmarks.history` — the longitudinal
per-experiment series stitched from per-commit run artifacts."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.compare_runs import load_seconds
from benchmarks.history import (
    HISTORY_FORMAT,
    load_run,
    load_runs,
    main,
    render_history,
    stitch,
)


def _artifact(
    tmp_path: Path,
    name: str,
    stamp: float | None,
    seconds: dict,
    p99: dict | None = None,
) -> Path:
    experiments = {
        tag: {"module": f"benchmarks.bench_{tag}", "seconds": s}
        for tag, s in seconds.items()
    }
    for tag, value in (p99 or {}).items():
        experiments[tag]["latency"] = {
            "p50": value / 2.0,
            "p95": value * 0.9,
            "p99": value,
            "count": 500,
        }
    document = {"seed": 0, "experiments": experiments, "total_seconds": 9.0}
    if stamp is not None:
        document["generated_at_unix"] = stamp
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return path


class TestLoading:
    def test_orders_by_timestamp_not_filename(self, tmp_path):
        _artifact(tmp_path, "a.json", 300.0, {"E1": 1.0})
        _artifact(tmp_path, "b.json", 100.0, {"E1": 2.0})
        runs = load_runs(tmp_path)
        assert [r["label"] for r in runs] == ["b", "a"]

    def test_unstamped_runs_sort_last_by_filename(self, tmp_path):
        _artifact(tmp_path, "z.json", 100.0, {"E1": 1.0})
        _artifact(tmp_path, "a.json", None, {"E1": 2.0})
        runs = load_runs(tmp_path)
        assert [r["label"] for r in runs] == ["z", "a"]

    def test_rejects_non_report_files(self, tmp_path):
        (tmp_path / "junk.json").write_text(json.dumps({"x": 1}))
        with pytest.raises(ValueError, match="not a BENCH_runall"):
            load_runs(tmp_path)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no .*json"):
            load_runs(tmp_path)


class TestStitch:
    def test_aligned_series_with_gaps(self, tmp_path):
        _artifact(tmp_path, "r0.json", 100.0, {"E1": 1.0})
        _artifact(
            tmp_path, "r1.json", 200.0,
            {"E1": 1.1, "E16": 2.0}, p99={"E16": 20e-6},
        )
        history = stitch(load_runs(tmp_path))
        assert history["format"] == HISTORY_FORMAT
        assert [r["label"] for r in history["runs"]] == ["r0", "r1"]
        assert history["experiments"]["E1"]["seconds"] == [1.0, 1.1]
        # E16 did not exist in the first run: aligned None, not a hole.
        assert history["experiments"]["E16"]["seconds"] == [None, 2.0]
        assert history["experiments"]["E16"]["p99"] == [
            None, pytest.approx(20e-6),
        ]
        assert history["experiments"]["E16"]["count"] == [None, 500]

    def test_stitched_document_json_round_trips(self, tmp_path):
        _artifact(tmp_path, "r0.json", 100.0, {"E1": 1.0})
        history = stitch(load_runs(tmp_path))
        assert json.loads(json.dumps(history)) == history


class TestRender:
    def test_table_per_experiment(self, tmp_path):
        _artifact(
            tmp_path, "r0.json", 100.0, {"E16": 1.0}, p99={"E16": 20e-6}
        )
        _artifact(
            tmp_path, "r1.json", 200.0, {"E16": 1.5}, p99={"E16": 30e-6}
        )
        text = render_history(stitch(load_runs(tmp_path)))
        assert "E16" in text
        assert "20.0" in text and "30.0" in text  # p99 in microseconds
        assert "500" in text  # sample counts shown

    def test_experiment_filter_and_unknown_tag(self, tmp_path):
        _artifact(tmp_path, "r0.json", 100.0, {"E1": 1.0, "E2": 2.0})
        history = stitch(load_runs(tmp_path))
        only = render_history(history, "E2")
        assert "E2" in only and "E1\n" not in only
        with pytest.raises(ValueError, match="known: E1, E2"):
            render_history(history, "E99")


class TestCli:
    def test_prints_tables_and_writes_outputs(self, tmp_path, capsys):
        _artifact(tmp_path, "r0.json", 100.0, {"E1": 1.0})
        _artifact(tmp_path, "r1.json", 200.0, {"E1": 1.2})
        out = tmp_path / "history.json"
        baseline = tmp_path / "baseline.json"
        code = main(
            [
                str(tmp_path),
                "--json", str(out),
                "--baseline-out", str(baseline),
            ]
        )
        assert code == 0
        assert "E1" in capsys.readouterr().out
        history = json.loads(out.read_text())
        assert history["format"] == HISTORY_FORMAT
        # The baseline re-emission is compare_runs-compatible and is
        # the NEWEST run.
        assert load_seconds(baseline) == {"E1": 1.2}

    def test_bad_directory_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_real_committed_report_is_stitchable(self, tmp_path):
        committed = (
            Path(__file__).resolve().parent.parent / "BENCH_runall.json"
        )
        run = load_run(committed)
        history = stitch([run])
        assert history["runs"][0]["label"] == "BENCH_runall"
        assert history["experiments"]
