"""Unit tests for :mod:`repro.algorithms.shortest_paths`, including
networkx as an oracle."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import (
    DisconnectedGraphError,
    GraphError,
    VertexNotFoundError,
    WeightedGraph,
    WeightError,
)
from repro.algorithms import (
    all_pairs_dijkstra,
    bellman_ford,
    dijkstra,
    dijkstra_path,
    path_hops,
)
from repro.graphs import generators


def to_networkx(graph: WeightedGraph) -> nx.Graph:
    nxg = nx.DiGraph() if graph.directed else nx.Graph()
    nxg.add_nodes_from(graph.vertices())
    for u, v, w in graph.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


class TestDijkstra:
    def test_triangle(self, triangle):
        distances, _ = dijkstra(triangle, 0)
        assert distances == {0: 0.0, 1: 1.0, 2: 3.0}

    def test_path_recovery(self, triangle):
        path, weight = dijkstra_path(triangle, 0, 2)
        assert path == [0, 1, 2]
        assert weight == 3.0

    def test_direct_edge_not_always_shortest(self, triangle):
        # Edge (0, 2) has weight 4 but the two-hop path weighs 3.
        path, weight = dijkstra_path(triangle, 0, 2)
        assert len(path) == 3

    def test_early_exit_with_target(self, grid5):
        distances, _ = dijkstra(grid5, (0, 0), target=(0, 1))
        assert distances[(0, 1)] == 1.0
        # Early exit means far corners may be unsettled.
        assert len(distances) < grid5.num_vertices

    def test_negative_weight_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, -1.0)])
        with pytest.raises(WeightError):
            dijkstra(g, 0)

    def test_missing_vertices(self, triangle):
        with pytest.raises(VertexNotFoundError):
            dijkstra(triangle, 99)
        with pytest.raises(VertexNotFoundError):
            dijkstra(triangle, 0, target=99)

    def test_unreachable_target(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            dijkstra_path(g, 0, 3)

    def test_directed_asymmetry(self):
        g = WeightedGraph(directed=True)
        g.add_edge(0, 1, 1.0)
        distances, _ = dijkstra(g, 1)
        assert 0 not in distances

    def test_zero_weight_edges(self):
        g = WeightedGraph.from_edges([(0, 1, 0.0), (1, 2, 0.0)])
        _, weight = dijkstra_path(g, 0, 2)
        assert weight == 0.0

    def test_against_networkx_random(self, rng):
        for _ in range(5):
            g = generators.erdos_renyi_graph(25, 0.15, rng)
            g = generators.assign_random_weights(g, rng, 0.1, 10.0)
            nxg = to_networkx(g)
            expected = dict(nx.single_source_dijkstra_path_length(nxg, 0))
            actual, _ = dijkstra(g, 0)
            assert set(actual) == set(expected)
            for v in expected:
                assert actual[v] == pytest.approx(expected[v])

    def test_all_pairs_subset_sources(self, grid5):
        result = all_pairs_dijkstra(grid5, sources=[(0, 0), (4, 4)])
        assert set(result) == {(0, 0), (4, 4)}
        assert result[(0, 0)][(4, 4)] == 8.0

    def test_all_pairs_matches_single_source(self, triangle):
        result = all_pairs_dijkstra(triangle)
        for s in triangle.vertices():
            expected, _ = dijkstra(triangle, s)
            assert result[s] == expected


class TestBellmanFord:
    def test_matches_dijkstra_nonnegative(self, rng):
        g = generators.erdos_renyi_graph(15, 0.2, rng)
        g = generators.assign_random_weights(g, rng, 0.0, 5.0)
        bf, _ = bellman_ford(g, 0)
        dj, _ = dijkstra(g, 0)
        assert set(bf) == set(dj)
        for v in dj:
            assert bf[v] == pytest.approx(dj[v])

    def test_directed_negative_weights(self):
        g = WeightedGraph(directed=True)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, -1.0)
        g.add_edge(0, 2, 3.0)
        distances, parents = bellman_ford(g, 0)
        assert distances[2] == 1.0
        assert parents[2] == 1

    def test_negative_cycle_detected(self):
        g = WeightedGraph(directed=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, -3.0)
        g.add_edge(2, 0, 1.0)
        with pytest.raises(GraphError):
            bellman_ford(g, 0)

    def test_undirected_negative_edge_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, -1.0)])
        with pytest.raises(GraphError):
            bellman_ford(g, 0)

    def test_missing_source(self, triangle):
        with pytest.raises(VertexNotFoundError):
            bellman_ford(triangle, 99)


class TestPathHops:
    def test_hops(self):
        assert path_hops([0, 1, 2, 3]) == 3
        assert path_hops([0]) == 0

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            path_hops([])
