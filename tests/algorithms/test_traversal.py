"""Unit tests for :mod:`repro.algorithms.traversal`."""

from __future__ import annotations

import pytest

from repro import VertexNotFoundError, WeightedGraph
from repro.algorithms import bfs_hop_distances, connected_components, is_connected
from repro.algorithms.traversal import bfs_hop_distance
from repro.graphs import generators


class TestBfsHopDistances:
    def test_path_graph_hops(self):
        g = generators.path_graph(6)
        hops = bfs_hop_distances(g, 0)
        assert hops == {i: i for i in range(6)}

    def test_weights_are_ignored(self):
        """Hop distance h(x, y) is weight-blind (Section 2)."""
        g = WeightedGraph.from_edges(
            [(0, 1, 100.0), (1, 2, 100.0), (0, 2, 0.001)]
        )
        hops = bfs_hop_distances(g, 0)
        assert hops[2] == 1

    def test_cutoff(self):
        g = generators.path_graph(10)
        hops = bfs_hop_distances(g, 0, cutoff=3)
        assert max(hops.values()) == 3
        assert set(hops) == {0, 1, 2, 3}

    def test_unreachable_absent(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        hops = bfs_hop_distances(g, 0)
        assert 2 not in hops

    def test_missing_source(self):
        g = generators.path_graph(3)
        with pytest.raises(VertexNotFoundError):
            bfs_hop_distances(g, 99)

    def test_single_pair_helper(self):
        g = generators.grid_graph(3, 3)
        assert bfs_hop_distance(g, (0, 0), (2, 2)) == 4
        disconnected = WeightedGraph.from_edges([(0, 1, 1.0)])
        disconnected.add_vertex(5)
        assert bfs_hop_distance(disconnected, 0, 5) == -1

    def test_grid_hops_are_manhattan(self):
        g = generators.grid_graph(4, 4)
        hops = bfs_hop_distances(g, (0, 0))
        for (r, c), h in hops.items():
            assert h == r + c


class TestComponents:
    def test_connected_graph_single_component(self, grid5):
        components = connected_components(grid5)
        assert len(components) == 1
        assert len(components[0]) == 25

    def test_multiple_components(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        g.add_vertex(4)
        components = connected_components(g)
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3], [4]]

    def test_is_connected(self, grid5):
        assert is_connected(grid5)
        g = WeightedGraph()
        g.add_vertex(0)
        g.add_vertex(1)
        assert not is_connected(g)

    def test_empty_graph_is_connected(self):
        assert is_connected(WeightedGraph())

    def test_directed_weak_connectivity(self):
        g = WeightedGraph(directed=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 1, 1.0)  # 1 unreachable to 2, but weakly connected
        assert is_connected(g)
