"""Unit tests for :mod:`repro.algorithms.covering` (Definition 4.1,
Lemma 4.4, Theorem 4.7)."""

from __future__ import annotations

import pytest

from repro import DisconnectedGraphError, GraphError, WeightedGraph
from repro.algorithms import (
    grid_covering,
    is_k_covering,
    meir_moon_k_covering,
    nearest_in_set,
)
from repro.algorithms.covering import greedy_k_covering
from repro.graphs import generators


class TestIsKCovering:
    def test_full_vertex_set_is_0_covering(self, grid5):
        assert is_k_covering(grid5, grid5.vertex_list(), 0)

    def test_center_covers_grid(self, grid5):
        assert is_k_covering(grid5, [(2, 2)], 4)
        assert not is_k_covering(grid5, [(2, 2)], 3)

    def test_empty_candidate(self, grid5):
        assert not is_k_covering(grid5, [], 1)
        assert is_k_covering(WeightedGraph(), [], 1)

    def test_negative_k_rejected(self, grid5):
        with pytest.raises(GraphError):
            is_k_covering(grid5, [(0, 0)], -1)

    def test_unknown_vertex_rejected(self, grid5):
        with pytest.raises(GraphError):
            is_k_covering(grid5, [(9, 9)], 1)


class TestNearestInSet:
    def test_assignment_within_cutoff(self, grid5):
        targets = [(0, 0), (4, 4)]
        assignment = nearest_in_set(grid5, targets)
        assert assignment[(0, 0)] == ((0, 0), 0)
        assert assignment[(4, 3)] == ((4, 4), 1)
        # (1, 1) is 2 hops from (0,0), 6 from (4,4).
        origin, hops = assignment[(1, 1)]
        assert origin == (0, 0) and hops == 2

    def test_cutoff_limits_reach(self, grid5):
        assignment = nearest_in_set(grid5, [(0, 0)], cutoff=2)
        assert (2, 2) not in assignment
        assert (1, 1) in assignment

    def test_every_vertex_assigned_without_cutoff(self, grid5):
        assignment = nearest_in_set(grid5, [(2, 2)])
        assert len(assignment) == 25


class TestMeirMoon:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_size_bound_on_random_graphs(self, rng, k):
        """Lemma 4.4: |Z| <= floor(V / (k+1)) for V >= k+1."""
        for _ in range(3):
            g = generators.erdos_renyi_graph(40, 0.08, rng)
            covering = meir_moon_k_covering(g, k)
            assert is_k_covering(g, covering, k)
            assert len(covering) <= 40 // (k + 1)

    def test_path_graph(self):
        g = generators.path_graph(20)
        covering = meir_moon_k_covering(g, 3)
        assert is_k_covering(g, covering, 3)
        assert len(covering) <= 5

    def test_star_with_large_k(self):
        """Eccentricity < k: a single vertex must suffice."""
        g = generators.star_graph(10)
        covering = meir_moon_k_covering(g, 5)
        assert is_k_covering(g, covering, 5)
        assert len(covering) == 1

    def test_k_zero_returns_all(self, grid5):
        covering = meir_moon_k_covering(grid5, 0)
        assert sorted(covering) == sorted(grid5.vertex_list())

    def test_too_small_graph_rejected(self):
        g = generators.path_graph(3)
        with pytest.raises(GraphError):
            meir_moon_k_covering(g, 5)

    def test_disconnected_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            meir_moon_k_covering(g, 1)

    def test_trees(self, rng):
        for _ in range(3):
            g = generators.random_tree(30, rng)
            covering = meir_moon_k_covering(g, 2)
            assert is_k_covering(g, covering, 2)
            assert len(covering) <= 10


class TestGreedyCovering:
    def test_valid_covering(self, grid5):
        covering = greedy_k_covering(grid5, 2)
        assert is_k_covering(grid5, covering, 2)

    def test_never_larger_than_needed_much(self, grid5):
        # Greedy on the 5x5 grid with k=4: one center vertex suffices.
        covering = greedy_k_covering(grid5, 4)
        assert len(covering) == 1

    def test_disconnected_covered_per_component(self):
        """Greedy covering works component-wise (unlike Lemma 4.4,
        which requires connectivity)."""
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        covering = greedy_k_covering(g, 1)
        assert is_k_covering(g, covering, 1)
        assert len(covering) == 2


class TestGridCovering:
    def test_theorem_47_parameters(self):
        """On the sqrt(V) x sqrt(V) grid with spacing s = V^(1/3): the
        lattice is a 2s-covering of size <= ~V^(1/3)."""
        side = 16  # V = 256, V^(1/3) ~ 6.35
        g = generators.grid_graph(side, side)
        spacing = round((side * side) ** (1 / 3))
        covering = grid_covering(side, side, spacing)
        assert is_k_covering(g, covering, 2 * spacing)
        assert len(covering) <= (side // spacing + 1) ** 2

    def test_covering_positions(self):
        covering = grid_covering(10, 10, 5)
        assert set(covering) == {(4, 4), (4, 9), (9, 4), (9, 9)}

    def test_small_grid_fallback(self):
        covering = grid_covering(2, 2, 10)
        assert covering == [(1, 1)]
        g = generators.grid_graph(2, 2)
        assert is_k_covering(g, covering, 2)

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            grid_covering(0, 5, 2)
        with pytest.raises(GraphError):
            grid_covering(5, 5, 0)
