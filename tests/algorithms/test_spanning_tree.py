"""Unit tests for :mod:`repro.algorithms.spanning_tree`."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import DisconnectedGraphError, VertexNotFoundError, WeightedGraph
from repro.algorithms import (
    UnionFind,
    kruskal_mst,
    prim_mst,
    spanning_tree_weight,
)
from repro.graphs import generators


class TestUnionFind:
    def test_singletons_are_separate(self):
        uf = UnionFind([1, 2, 3])
        assert not uf.together(1, 2)

    def test_union_and_find(self):
        uf = UnionFind([1, 2, 3])
        assert uf.union(1, 2)
        assert uf.together(1, 2)
        assert not uf.union(1, 2)  # already merged

    def test_transitive_union(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.together(0, 2)
        assert not uf.together(2, 3)

    def test_unknown_item(self):
        uf = UnionFind()
        with pytest.raises(KeyError):
            uf.find("ghost")

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.add("x")
        assert len(uf) == 1


class TestMst:
    def test_kruskal_triangle(self, triangle):
        tree = kruskal_mst(triangle)
        assert spanning_tree_weight(triangle, tree) == 3.0
        assert len(tree) == 2

    def test_prim_matches_kruskal_weight(self, rng):
        for _ in range(5):
            g = generators.erdos_renyi_graph(20, 0.2, rng)
            g = generators.assign_random_weights(g, rng, 0.1, 10.0)
            wk = spanning_tree_weight(g, kruskal_mst(g))
            wp = spanning_tree_weight(g, prim_mst(g))
            assert wk == pytest.approx(wp)

    def test_against_networkx(self, rng):
        g = generators.erdos_renyi_graph(25, 0.25, rng)
        g = generators.assign_random_weights(g, rng, 0.1, 10.0)
        nxg = nx.Graph()
        for u, v, w in g.edges():
            nxg.add_edge(u, v, weight=w)
        expected = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_edges(nxg, data=True)
        )
        assert spanning_tree_weight(g, kruskal_mst(g)) == pytest.approx(
            expected
        )

    def test_negative_weights(self):
        """Appendix B allows negative weights; MST must handle them."""
        g = WeightedGraph.from_edges(
            [(0, 1, -5.0), (1, 2, 2.0), (0, 2, -1.0)]
        )
        tree = kruskal_mst(g)
        assert spanning_tree_weight(g, tree) == -6.0

    def test_disconnected_raises(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            kruskal_mst(g)
        with pytest.raises(DisconnectedGraphError):
            prim_mst(g)

    def test_tree_input_is_identity(self, rng):
        g = generators.random_tree(30, rng)
        g = generators.assign_random_weights(g, rng, 1.0, 5.0)
        tree = kruskal_mst(g)
        assert sorted(map(sorted, tree)) == sorted(
            map(sorted, g.edge_list())
        )

    def test_prim_start_vertex(self, grid5):
        tree = prim_mst(grid5, start=(2, 2))
        assert len(tree) == 24

    def test_prim_bad_start(self, grid5):
        with pytest.raises(VertexNotFoundError):
            prim_mst(grid5, start=(9, 9))

    def test_empty_graph(self):
        assert prim_mst(WeightedGraph()) == []

    def test_spanning_tree_weight_cross_evaluation(self, triangle):
        """Evaluating a tree under a different weighting (the
        Theorem B.3 error analysis pattern)."""
        tree = kruskal_mst(triangle)
        reweighted = triangle.with_weights(
            {key: 10.0 for key in triangle.edge_list()}
        )
        assert spanning_tree_weight(reweighted, tree) == 20.0
