"""Unit tests for :mod:`repro.algorithms.matching`."""

from __future__ import annotations

import itertools

import networkx as nx
import pytest

from repro import GraphError, MatchingError, WeightedGraph
from repro.algorithms import (
    exact_min_weight_perfect_matching,
    greedy_perfect_matching,
    hungarian_min_cost_perfect_matching,
    is_perfect_matching,
    matching_weight,
)
from repro.algorithms.matching import (
    bipartition,
    hungarian_min_cost_assignment,
)
from repro.graphs import generators


def brute_force_min_perfect_matching(graph: WeightedGraph) -> float:
    """Exponential reference: try all perfect matchings."""
    vertices = graph.vertex_list()
    best = float("inf")

    def recurse(remaining: tuple, acc: float) -> None:
        nonlocal best
        if not remaining:
            best = min(best, acc)
            return
        u = remaining[0]
        rest = remaining[1:]
        for v in rest:
            if graph.has_edge(u, v):
                recurse(
                    tuple(x for x in rest if x != v),
                    acc + graph.weight(u, v),
                )

    recurse(tuple(vertices), 0.0)
    return best


class TestHungarianAssignment:
    def test_identity_optimal(self):
        cost = [[0.0, 5.0], [5.0, 0.0]]
        assignment, total = hungarian_min_cost_assignment(cost)
        assert assignment == [0, 1]
        assert total == 0.0

    def test_cross_optimal(self):
        cost = [[5.0, 0.0], [0.0, 5.0]]
        assignment, total = hungarian_min_cost_assignment(cost)
        assert assignment == [1, 0]
        assert total == 0.0

    def test_negative_costs(self):
        cost = [[-2.0, 1.0], [1.0, -3.0]]
        _, total = hungarian_min_cost_assignment(cost)
        assert total == -5.0

    def test_empty(self):
        assert hungarian_min_cost_assignment([]) == ([], 0.0)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            hungarian_min_cost_assignment([[1.0, 2.0]])

    def test_against_brute_force(self, rng):
        for _ in range(10):
            n = 5
            cost = [
                [rng.uniform(-3, 3) for _ in range(n)] for _ in range(n)
            ]
            _, total = hungarian_min_cost_assignment(cost)
            brute = min(
                sum(cost[i][p[i]] for i in range(n))
                for p in itertools.permutations(range(n))
            )
            assert total == pytest.approx(brute)


class TestBipartition:
    def test_even_cycle(self):
        g = generators.cycle_graph(6)
        left, right = bipartition(g)
        assert len(left) == len(right) == 3
        for u, v, _ in g.edges():
            assert (u in left) != (v in left)

    def test_odd_cycle_rejected(self):
        g = generators.cycle_graph(5)
        with pytest.raises(GraphError):
            bipartition(g)

    def test_disconnected_components(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        left, right = bipartition(g)
        assert len(left) + len(right) == 4


class TestHungarianMatching:
    def test_simple_bipartite(self):
        g = WeightedGraph.from_edges(
            [("l0", "r0", 1.0), ("l0", "r1", 5.0), ("l1", "r0", 5.0), ("l1", "r1", 1.0)]
        )
        matching = hungarian_min_cost_perfect_matching(g)
        assert is_perfect_matching(g, matching)
        assert matching_weight(g, matching) == 2.0

    def test_no_perfect_matching(self):
        # Two left vertices forced onto the same right vertex.
        g = WeightedGraph.from_edges(
            [
                ("l0", "r0", 1.0),
                ("l1", "r0", 1.0),
                ("l2", "r1", 1.0),
                ("l2", "r2", 1.0),
            ]
        )
        with pytest.raises(MatchingError):
            hungarian_min_cost_perfect_matching(
                g, left=["l0", "l1", "l2"], right=["r0", "r1", "r2"]
            )

    def test_unequal_sides(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (0, 3, 1.0)])
        with pytest.raises(MatchingError):
            hungarian_min_cost_perfect_matching(g, left=[0], right=[1, 3])

    def test_matches_brute_force_random_bipartite(self, rng):
        for _ in range(5):
            n = 4
            g = WeightedGraph()
            for i in range(n):
                for j in range(n):
                    if rng.uniform() < 0.8:
                        g.add_edge(("L", i), ("R", j), rng.uniform(-2, 5))
            for i in range(n):
                g.add_vertex(("L", i))
                g.add_vertex(("R", i))
            try:
                matching = hungarian_min_cost_perfect_matching(
                    g,
                    left=[("L", i) for i in range(n)],
                    right=[("R", j) for j in range(n)],
                )
            except MatchingError:
                assert brute_force_min_perfect_matching(g) == float("inf")
                continue
            assert is_perfect_matching(g, matching)
            assert matching_weight(g, matching) == pytest.approx(
                brute_force_min_perfect_matching(g)
            )


class TestExactGeneralMatching:
    def test_square_cycle(self):
        g = generators.cycle_graph(4)
        g.set_weight(0, 1, 1.0)
        g.set_weight(1, 2, 10.0)
        g.set_weight(2, 3, 1.0)
        g.set_weight(3, 0, 10.0)
        matching = exact_min_weight_perfect_matching(g)
        assert matching_weight(g, matching) == 2.0

    def test_odd_component_rejected(self):
        g = generators.cycle_graph(3)
        with pytest.raises(MatchingError):
            exact_min_weight_perfect_matching(g)

    def test_component_without_matching(self):
        g = generators.star_graph(4)  # hub + 3 leaves: even but no PM
        with pytest.raises(MatchingError):
            exact_min_weight_perfect_matching(g)

    def test_too_large_component_rejected(self):
        g = generators.cycle_graph(24)
        with pytest.raises(MatchingError):
            exact_min_weight_perfect_matching(g)

    def test_per_component_solving(self):
        """Disjoint 4-cycles are solved independently (the hourglass
        instance pattern)."""
        g = WeightedGraph()
        for c in range(6):
            g.add_edge((c, 0), (c, 1), 1.0)
            g.add_edge((c, 1), (c, 2), 9.0)
            g.add_edge((c, 2), (c, 3), 1.0)
            g.add_edge((c, 3), (c, 0), 9.0)
        matching = exact_min_weight_perfect_matching(g)
        assert is_perfect_matching(g, matching)
        assert matching_weight(g, matching) == 12.0

    def test_matches_networkx_on_general_graphs(self, rng):
        """Oracle check on non-bipartite graphs."""
        for _ in range(5):
            n = 8
            g = generators.erdos_renyi_graph(n, 0.6, rng)
            g = generators.assign_random_weights(g, rng, 0.1, 4.0)
            nxg = nx.Graph()
            for u, v, w in g.edges():
                nxg.add_edge(u, v, weight=w)
            expected = nx.min_weight_matching(nxg)
            if len(expected) * 2 != n:
                continue  # no perfect matching; skip
            expected_weight = sum(
                nxg[u][v]["weight"] for u, v in expected
            )
            matching = exact_min_weight_perfect_matching(g)
            assert is_perfect_matching(g, matching)
            assert matching_weight(g, matching) == pytest.approx(
                expected_weight
            )

    def test_negative_weights(self):
        g = WeightedGraph.from_edges(
            [(0, 1, -4.0), (1, 2, -10.0), (2, 3, -4.0), (3, 0, -1.0)]
        )
        matching = exact_min_weight_perfect_matching(g)
        assert matching_weight(g, matching) == -11.0


class TestGreedyAndValidation:
    def test_greedy_valid_on_complete_even(self, rng):
        g = generators.complete_graph(8)
        g = generators.assign_random_weights(g, rng, 0.0, 1.0)
        matching = greedy_perfect_matching(g)
        assert is_perfect_matching(g, matching)

    def test_greedy_failure(self):
        # Path on 4 vertices with a tempting middle edge.
        g = WeightedGraph.from_edges(
            [(0, 1, 5.0), (1, 2, 1.0), (2, 3, 5.0)]
        )
        with pytest.raises(MatchingError):
            greedy_perfect_matching(g)

    def test_is_perfect_matching_rejects_overlap(self, triangle):
        assert not is_perfect_matching(
            triangle, [(0, 1), (1, 2)]
        )

    def test_is_perfect_matching_rejects_non_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        assert not is_perfect_matching(g, [(0, 2), (1, 3)])

    def test_is_perfect_matching_accepts(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        assert is_perfect_matching(g, [(0, 1), (2, 3)])
