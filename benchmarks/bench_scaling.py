"""E12 — Section 1.2 "Scaling": error scales with the neighboring unit.

The paper's remark: if one individual can shift the weights by only
``u`` (instead of 1) in L1, all error bounds scale by ``u`` — e.g. with
``u = 1/V`` the path error drops from ``O(V log V)/eps`` to
``O(log V)/eps``.  Workload: a grid road network (many alternative
routes, so path errors are non-trivial), corner-to-corner and mid-range
pairs.  Shape to check: measured error scales ~linearly with the unit.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_private_paths
from repro.analysis import path_error, render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import generators

EPS = 1.0
GAMMA = 0.05
SIDE = 12
UNITS = [1.0, 0.1, 1.0 / (SIDE * SIDE)]
PAIRS = [
    ((0, 0), (SIDE - 1, SIDE - 1)),
    ((0, SIDE - 1), (SIDE - 1, 0)),
    ((0, 0), (SIDE // 2, SIDE // 2)),
    ((3, 3), (8, 9)),
]


def run_experiment() -> str:
    rng = fresh_rng(120)
    graph = generators.grid_graph(SIDE, SIDE)
    graph = generators.assign_random_weights(graph, rng.spawn(), 1.0, 5.0)
    rows = []
    for unit in UNITS:
        errors = []
        for _ in range(TRIALS * 4):
            release = release_private_paths(
                graph, EPS, GAMMA, rng.spawn(), sensitivity_unit=unit
            )
            for s, t in PAIRS:
                errors.append(path_error(graph, release.path(s, t)))
        summary = summarize_errors(errors)
        bound = unit * bounds.shortest_path_error(
            2 * (SIDE - 1), graph.num_edges, EPS, GAMMA
        )
        rows.append([unit, summary.mean, summary.maximum, bound])
    return render_table(
        ["unit", "mean err", "max err", "scaled bound"],
        rows,
        title=(
            "E12  Sensitivity-unit scaling (Section 1.2 remark) on a "
            f"{SIDE}x{SIDE} grid, eps=1.\nExpected shape: error scales "
            "~linearly with the unit (1/V unit -> ~log V error)."
        ),
    )


def test_table_e12(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) == len(UNITS)
    # Rows are in UNITS order: [1.0, 0.1, 1/V].
    unit_err = {unit: float(row[1]) for unit, row in zip(UNITS, lines)}
    # Mean error at unit 1 is much larger than at unit 1/V; at unit
    # 0.1 it sits in between.  (Loose bands: single-topology noise.)
    assert unit_err[1.0] > unit_err[0.1] >= unit_err[min(UNITS)]
    ratio = unit_err[1.0] / max(unit_err[0.1], 1e-9)
    assert 2.0 < ratio < 60.0
    for row in lines:
        assert float(row[2]) <= float(row[3])  # within the scaled bound


def test_benchmark_scaled_release(benchmark):
    rng = fresh_rng(121)
    graph = generators.grid_graph(SIDE, SIDE)
    benchmark(
        lambda: release_private_paths(
            graph, EPS, GAMMA, rng.spawn(), sensitivity_unit=1.0 / (SIDE * SIDE)
        )
    )


if __name__ == "__main__":
    print_experiment(run_experiment())
