"""E4 — Appendix A / Theorem A.1: the path-graph hub hierarchy.

The paper says the Appendix A construction matches the tree algorithm's
``O(log^1.5 V)/eps`` per-distance error (both restate DNPR10).  The
table compares the two algorithms on the same path graphs; the shape to
check is *same order of magnitude, both polylog*.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_path_hierarchy, release_tree_single_source
from repro.analysis import render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import RootedTree, generators

EPS = 1.0
GAMMA = 0.05
SIZES = [64, 256, 1024, 4096]


def run_experiment() -> str:
    rng = fresh_rng(30)
    rows = []
    for n in SIZES:
        graph = generators.path_graph(n)
        graph = generators.assign_random_weights(graph, rng.spawn(), 0.0, 5.0)
        rooted = RootedTree(graph, 0)
        targets = list(range(0, n, max(1, n // 24)))
        hub_errors, tree_errors = [], []
        for _ in range(TRIALS):
            hub = release_path_hierarchy(graph, eps=EPS, rng=rng.spawn())
            alg1 = release_tree_single_source(rooted, eps=EPS, rng=rng.spawn())
            for t in targets:
                true = rooted.distance_from_root(t)
                hub_errors.append(abs(hub.distance(0, t) - true))
                tree_errors.append(abs(alg1.distance_from_root(t) - true))
        rows.append(
            [
                n,
                summarize_errors(hub_errors).mean,
                summarize_errors(tree_errors).mean,
                bounds.tree_single_source_error(n, EPS, GAMMA),
            ]
        )
    return render_table(
        ["V", "hub hierarchy mean err", "Algorithm 1 mean err", "bound (Thm A.1)"],
        rows,
        title=(
            "E4  Path-graph distances: Appendix A hub hierarchy vs "
            "Algorithm 1, eps=1.\nExpected shape: comparable polylog error "
            "for both (the paper proves the same bound)."
        ),
    )


def test_table_e4(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) == len(SIZES)
    for row in lines:
        hub, alg1 = float(row[1]), float(row[2])
        # Same order of magnitude.
        assert 0.1 < hub / alg1 < 10.0
    # Polylog: 64x more vertices < 6x more error.
    assert float(lines[-1][1]) < 6 * float(lines[0][1])


def test_benchmark_path_hierarchy(benchmark):
    rng = fresh_rng(31)
    graph = generators.path_graph(4096)
    benchmark(lambda: release_path_hierarchy(graph, eps=EPS, rng=rng.spawn()))


if __name__ == "__main__":
    print_experiment(run_experiment())
