"""E19 — sharded serving vs one monolithic synopsis per epoch.

The ROADMAP's "sharded serving" rung, measured: a 4096-vertex
road-like network (64x64 grid road topology) served either by one
unsharded hub-set ``DistanceService`` or by a
``ShardedDistanceService`` with 4 regional tenants stitched together
through the boundary-hub relay of :mod:`repro.serving.sharding`.

Per configuration the table reports the initial epoch build time, the
cost of reacting to a congestion update — a *full* epoch rebuild for
the unsharded service versus a *single-shard* regional refresh
(``refresh_shard``: one ``V/k``-vertex tenant rebuild plus the relay
table) for the sharded one — and the empirical mean absolute error on
a fixed query sample split into intra-shard and cross-shard pairs (the
split uses the shard plan for both services, so the columns compare
like for like).

Expected shape: the regional refresh is several times cheaper than
the full rebuild (the whole point of sharding — a regional update no
longer pays a city-wide synopsis), while at eps = 1 every mechanism
here is noise-dominated, so the clamp-at-zero hub estimators on both
sides saturate at the mean true distance and the sharded cross-shard
error stays within a small constant factor of the unsharded release.

``python benchmarks/bench_sharding.py --quick`` runs a reduced
256-vertex instance — the CI smoke configuration.
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, ".")  # allow `python benchmarks/bench_sharding.py`

from benchmarks.common import fresh_rng, latency_summary, print_experiment
from repro import Rng, ServingConfig, Telemetry, serve
from repro.algorithms.shortest_paths import all_pairs_dijkstra
from repro.analysis import render_table
from repro.workloads import grid_road_network, uniform_pairs

SIDE = 64  # 4096 vertices
QUICK_SIDE = 16  # 256 vertices
SHARDS = 4
EPS = 1.0
QUERY_SAMPLE = 500
REGIONAL_SLOWDOWN = 1.25


def _mean_abs_errors(service, pairs, exact):
    """(intra MAE, cross MAE) for a service over a classified sample."""
    sums = {"intra": 0.0, "cross": 0.0}
    counts = {"intra": 0, "cross": 0}
    for (s, t, kind), truth in zip(pairs, exact):
        sums[kind] += abs(service.query(s, t) - truth)
        counts[kind] += 1
    return (
        sums["intra"] / max(counts["intra"], 1),
        sums["cross"] / max(counts["cross"], 1),
    )


#: Records both configurations' served queries; ``run_all.py`` reads
#: the merged quantiles through :func:`latency_metrics`.
_TELEMETRY = Telemetry()


def latency_metrics() -> dict | None:
    """Per-query latency quantiles of the last :func:`run_experiment`."""
    return latency_summary(_TELEMETRY)


def telemetry_bundle() -> Telemetry:
    """The experiment's bundle — ``run_all.py --profile`` attaches a
    phase profiler to its tracer for the run's attribution table."""
    return _TELEMETRY


def run_experiment(quick: bool = False) -> str:
    _TELEMETRY.clear()
    side = QUICK_SIDE if quick else SIDE
    network = grid_road_network(side, side, fresh_rng(210))
    graph = network.graph

    # Both configurations come off the one declarative serving path;
    # sharded vs unsharded is a config field, not a code path.
    start = time.perf_counter()
    unsharded = serve(
        graph,
        ServingConfig(mechanism="hub-set", eps=EPS),
        fresh_rng(211),
        telemetry=_TELEMETRY,
    )
    t_build_unsharded = time.perf_counter() - start

    start = time.perf_counter()
    sharded = serve(
        graph,
        ServingConfig(mechanism="hub-set", eps=EPS, shards=SHARDS),
        fresh_rng(212),
        telemetry=_TELEMETRY,
    )
    t_build_sharded = time.perf_counter() - start
    plan = sharded.plan

    # Error sample on the initial epoch, classified by the shard plan
    # so both services are measured on identical intra/cross pairs.
    raw_pairs = uniform_pairs(graph, QUERY_SAMPLE, fresh_rng(213))
    pairs = [
        (
            s,
            t,
            "intra" if plan.shard_of(s) == plan.shard_of(t) else "cross",
        )
        for s, t in raw_pairs
    ]
    sweep = all_pairs_dijkstra(
        graph, sources=list(dict.fromkeys(s for s, _, _ in pairs))
    )
    exact = [sweep[s][t] for s, t, _ in pairs]
    un_intra, un_cross = _mean_abs_errors(unsharded, pairs, exact)
    sh_intra, sh_cross = _mean_abs_errors(sharded, pairs, exact)

    # Reaction to a congestion update: the unsharded service pays a
    # full epoch rebuild; the sharded one refreshes only the affected
    # region (shard 0) plus the relay table.
    full_weights = {
        e: w * REGIONAL_SLOWDOWN for e, w in graph.weights().items()
    }
    start = time.perf_counter()
    unsharded.refresh(graph.with_weights(full_weights))
    t_full_rebuild = time.perf_counter() - start

    regional_weights = graph.weights()
    for (u, v), w in list(regional_weights.items()):
        if plan.shard_of(u) == plan.shard_of(v) == 0:
            regional_weights[(u, v)] = w * REGIONAL_SLOWDOWN
    start = time.perf_counter()
    sharded.refresh_shard(0, regional_weights)
    t_shard_refresh = time.perf_counter() - start

    rows = [
        [
            "unsharded hub-set",
            t_build_unsharded,
            t_full_rebuild,
            un_intra,
            un_cross,
            "-",
        ],
        [
            f"sharded k={SHARDS} + relay",
            t_build_sharded,
            t_shard_refresh,
            sh_intra,
            sh_cross,
            len(plan.boundary),
        ],
    ]
    speedup = t_full_rebuild / max(t_shard_refresh, 1e-9)
    return render_table(
        [
            "configuration",
            "build s",
            "refresh s",
            "intra MAE",
            "cross MAE",
            "boundary",
        ],
        rows,
        title=(
            f"E19  Sharded serving vs one monolithic synopsis: "
            f"{side}x{side} road grid (V={side * side}), eps={EPS}, "
            f"{SHARDS} shards, {QUERY_SAMPLE} sampled queries.\n"
            "'refresh s' is a full epoch rebuild for the unsharded "
            "row and a single-shard regional refresh (one tenant + "
            "the boundary-hub relay) for the sharded row: "
            f"{speedup:.1f}x cheaper here.\n"
            "Both rows answer the identical intra/cross pair sample; "
            "at eps=1 both estimators are noise-dominated, so the "
            "cross-shard error stays within a small factor of the "
            "unsharded release."
        ),
        precision=3,
    )


def test_table_e19(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    rows = parse_rows(table)
    assert len(rows) == 2
    by_config = {r[0]: r for r in rows}
    unsharded = by_config["unsharded hub-set"]
    sharded = by_config[f"sharded k={SHARDS} + relay"]
    # The acceptance bar: a regional refresh is measurably cheaper
    # than the full unsharded epoch rebuild...
    assert float(sharded[2]) < float(unsharded[2])
    # ...while the cross-shard error stays within a small constant
    # factor of the unsharded hub-set release on the same pairs.
    assert float(sharded[4]) <= 3.0 * float(unsharded[4])


def test_quick_mode_runs():
    table = run_experiment(quick=True)
    assert "V=256" in table


if __name__ == "__main__":
    print_experiment(run_experiment(quick="--quick" in sys.argv[1:]))
