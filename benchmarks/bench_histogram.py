"""E14 (extension) — Section 1.3: the histogram-formulation trade-off.

Section 1.3 notes that generic synthetic-database machinery applies to
the private edge-weight model, yielding bounds that depend on
``||w||_1`` (incomparable to the paper's) at exponential running time.
This bench makes the trade-off concrete with the exponential-mechanism
release of :mod:`repro.core.histogram_release` on a tiny cycle:

* vs the Laplace synthetic graph (polynomial time) at the same eps,
* across total weight levels — the histogram route is competitive when
  ``||w||_1`` is small and the grid is fine, while its runtime is
  exponential (the candidate column) either way.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

import time

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_synthetic_graph
from repro.algorithms import all_pairs_dijkstra
from repro.analysis import render_table, summarize_errors
from repro.core.histogram_release import release_histogram_distances
from repro.graphs import generators

EPS = 2.0
SETTINGS = [
    # (cycle size, weight bound M, grid resolution)
    (4, 1.0, 0.5),
    (5, 1.0, 0.5),
    (4, 2.0, 0.5),
    (4, 1.0, 0.25),
]


def run_experiment() -> str:
    rng = fresh_rng(140)
    rows = []
    for n, m, tau in SETTINGS:
        graph = generators.cycle_graph(n)
        # Put true weights on the grid so a zero-error candidate exists.
        levels = int(m / tau) + 1
        child = rng.spawn()
        snapped = [
            round(child.integer(0, levels) * tau, 12)
            for _ in range(graph.num_edges)
        ]
        graph = graph.with_weights(snapped)
        exact = all_pairs_dijkstra(graph)
        vertices = graph.vertex_list()
        pairs = [
            (vertices[i], vertices[j])
            for i in range(n)
            for j in range(i + 1, n)
        ]
        hist_errors, base_errors = [], []
        candidates = None
        hist_seconds = 0.0
        for _ in range(TRIALS):
            start = time.perf_counter()
            hist = release_histogram_distances(
                graph, m, tau, eps=EPS, rng=rng.spawn()
            )
            hist_seconds += time.perf_counter() - start
            base = release_synthetic_graph(graph, eps=EPS, rng=rng.spawn())
            candidates = hist.num_candidates
            for s, t in pairs:
                hist_errors.append(abs(hist.distance(s, t) - exact[s][t]))
                base_errors.append(abs(base.distance(s, t) - exact[s][t]))
        rows.append(
            [
                n,
                m,
                tau,
                candidates,
                summarize_errors(hist_errors).mean,
                summarize_errors(base_errors).mean,
                hist_seconds / TRIALS,
            ]
        )
    return render_table(
        [
            "V",
            "M",
            "tau",
            "|C| (exp!)",
            "histogram err",
            "Laplace err",
            "hist sec/run",
        ],
        rows,
        title=(
            "E14 (extension)  Section 1.3 histogram formulation vs the "
            "Laplace synthetic graph, eps=2.\nExpected shape: histogram "
            "error competitive at small ||w||_1 / fine grids; candidate "
            "count (runtime) exponential in E."
        ),
    )


def test_table_e14(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) == len(SETTINGS)
    # Candidate count is exponential: 5 edges at 3 levels = 243 vs 81.
    by_setting = {(int(r[0]), float(r[1]), float(r[2])): r for r in lines}
    assert int(by_setting[(5, 1.0, 0.5)][3]) == 3 ** 5
    assert int(by_setting[(4, 1.0, 0.5)][3]) == 3 ** 4
    # Finer grid -> more candidates.
    assert int(by_setting[(4, 1.0, 0.25)][3]) > int(
        by_setting[(4, 1.0, 0.5)][3]
    )
    # Errors are finite and bounded by the trivial max distance.
    for row in lines:
        assert 0.0 <= float(row[4]) <= float(row[0]) * float(row[1])


def test_benchmark_histogram_release(benchmark):
    rng = fresh_rng(141)
    graph = generators.cycle_graph(4)
    graph = graph.with_weights([0.5, 1.0, 0.0, 0.5])
    benchmark(
        lambda: release_histogram_distances(
            graph, 1.0, 0.5, eps=EPS, rng=rng.spawn()
        )
    )


if __name__ == "__main__":
    print_experiment(run_experiment())
