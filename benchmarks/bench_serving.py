"""E16 — the serving engine: queries/sec and error vs eps.

Stands up a :class:`repro.serving.DistanceService` over a rush-hour
grid road network and replays a batch of rider queries per epsilon.
Two things to check:

* throughput (queries/sec) is flat in eps — serving is dictionary
  lookups over the synopsis, independent of how noisy it is;
* mean absolute error falls as eps grows — the synopsis noise scale
  is ``~pairs/eps``, so quadrupling eps should cut error ~4x.

Every batch is served from a single per-epoch synopsis: the ledger
records exactly one spend no matter how many queries are answered.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")  # allow `python benchmarks/bench_*.py`

from benchmarks.common import fresh_rng, latency_summary, print_experiment
from repro import ServingConfig, Telemetry, serve
from repro.analysis import render_table
from repro.serving import replay_rush_hour
from repro.workloads import grid_road_network

EPS_VALUES = [0.25, 1.0, 4.0]
ROWS = COLS = 8
QUERIES = 2000

#: The bundle the experiment's replays record into; ``run_all.py``
#: reads the resulting latency quantiles through :func:`latency_metrics`.
_TELEMETRY = Telemetry()


def latency_metrics() -> dict | None:
    """Per-query latency quantiles of the last :func:`run_experiment`."""
    return latency_summary(_TELEMETRY)


def telemetry_bundle() -> Telemetry:
    """The experiment's bundle — ``run_all.py --profile`` attaches a
    phase profiler to its tracer for the run's attribution table."""
    return _TELEMETRY


def _ci90_half_width(eps: float) -> float:
    """The advertised 90% interval half-width of one estimate served
    on the E16 road grid at this eps — the Estimate API's accuracy
    disclosure, straight off the declarative serving path."""
    rng = fresh_rng(165)
    network = grid_road_network(ROWS, COLS, rng)
    service = serve(network.graph, ServingConfig(eps=eps), rng)
    estimate = service.estimate((0, 0), (ROWS - 1, COLS - 1))
    return estimate.margin(0.90)


def run_experiment() -> str:
    _TELEMETRY.clear()
    rows = []
    for i, eps in enumerate(EPS_VALUES):
        report = replay_rush_hour(
            fresh_rng(160 + i),
            rows=ROWS,
            cols=COLS,
            eps=eps,
            epochs=1,
            queries_per_epoch=QUERIES,
            telemetry=_TELEMETRY,
        )
        rows.append(
            [
                eps,
                report.mechanism,
                report.total_queries,
                round(report.queries_per_second),
                report.ledger_spends,
                report.mean_abs_error,
                report.max_abs_error,
                _ci90_half_width(eps),
            ]
        )
    return render_table(
        [
            "eps",
            "mechanism",
            "queries",
            "queries/sec",
            "spends",
            "mean abs err",
            "max abs err",
            "ci90 half-width",
        ],
        rows,
        title=(
            f"E16  Serving engine on a {ROWS}x{COLS} rush-hour grid, "
            f"{QUERIES} queries/epoch.\n"
            "Expected shape: error ~ 1/eps, and the Estimate API's "
            "advertised 90% interval tracks it; throughput flat; one "
            "budget spend per epoch."
        ),
    )


def test_table_e16(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    rows = parse_rows(table)
    # One ledger spend per epoch regardless of batch size.
    assert all(int(r[4]) == 1 for r in rows)
    # Positive throughput reported.
    assert all(float(r[3]) > 0 for r in rows)
    # Error shrinks as eps grows (16x eps spread is far beyond the
    # sampling noise of a 2016-pair synopsis).
    assert float(rows[0][5]) > float(rows[-1][5])
    # The advertised interval is nonzero and scales exactly as 1/eps
    # (the all-pairs scale is pairs/eps and the quantile is linear in
    # the scale).
    assert all(float(r[7]) > 0 for r in rows)
    assert float(rows[0][7]) > float(rows[-1][7])


def test_benchmark_batch_serving(benchmark):
    from repro.serving import DistanceService
    from repro.workloads import grid_road_network, uniform_pairs

    rng = fresh_rng(170)
    network = grid_road_network(ROWS, COLS, rng)
    service = DistanceService(network.graph, 1.0, rng)
    pairs = uniform_pairs(network.graph, QUERIES, rng)
    benchmark(lambda: service.query_batch(pairs))


def test_benchmark_synopsis_build(benchmark):
    from repro.serving import DistanceService
    from repro.workloads import grid_road_network

    rng = fresh_rng(171)
    network = grid_road_network(ROWS, COLS, rng)
    benchmark(
        lambda: DistanceService(network.graph, 1.0, rng.spawn())
    )


if __name__ == "__main__":
    print_experiment(run_experiment())
