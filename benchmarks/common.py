"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` module reproduces one experiment from the index
registered in ``run_all.py`` (currently E1-E18).  Every module
exposes:

* ``run_experiment(...) -> str`` — computes the paper-vs-measured table
  and returns it rendered (this is what EXPERIMENTS.md embeds);
* pytest-benchmark tests (``test_*``) timing the mechanism under test,
  so ``pytest benchmarks/ --benchmark-only`` doubles as a performance
  regression harness;
* a ``__main__`` guard so ``python benchmarks/bench_xxx.py`` prints the
  table directly.

Experiments are deterministic: all randomness derives from SEED.
"""

from __future__ import annotations

from repro import Rng

SEED = 20160626  # PODS 2016 opening day; any constant works.

#: Number of repeated trials per experiment setting.  Small enough to
#: keep the whole harness under a few minutes, large enough for stable
#: means.
TRIALS = 5


def fresh_rng(offset: int = 0) -> Rng:
    """A reproducible generator for one experiment."""
    return Rng(SEED + offset)


def print_experiment(table: str) -> None:
    """Print a rendered experiment table with a separator."""
    print()
    print(table)
    print()


def parse_rows(table: str) -> list[list[str]]:
    """Parse the data rows out of a rendered experiment table.

    Data rows follow the dashed separator line; cells are recovered by
    splitting on runs of two or more spaces, so multi-word labels
    ("star gadget eps=0.1") survive while right-justified numeric
    columns split cleanly.  Table tests use this instead of ad-hoc
    string slicing.
    """
    import re

    lines = table.splitlines()
    separator_index = next(
        i
        for i, line in enumerate(lines)
        if line and set(line.strip()) <= {"-", " "}
    )
    rows = []
    for line in lines[separator_index + 1 :]:
        if not line.strip():
            continue
        rows.append(re.split(r"\s{2,}", line.strip()))
    return rows


def latency_summary(telemetry) -> dict | None:
    """p50/p95/p99 per-query serving latency (seconds) a benchmark's
    telemetry bundle recorded, or ``None`` when nothing was observed.
    This is what ``run_all.py`` folds into ``BENCH_runall.json`` so
    the perf trajectory tracks tail latency, not just wall-clock."""
    sketch = telemetry.registry.merged_histogram("serving.query.latency")
    if sketch is None or sketch.count == 0:
        return None
    return {
        "p50": sketch.quantile(0.50),
        "p95": sketch.quantile(0.95),
        "p99": sketch.quantile(0.99),
        "count": sketch.count,
    }
