"""E13 (extension) — private all-pairs distances on cycles.

The paper's future-work section asks for all-pairs algorithms on more
network classes; `repro.core.cycle_distances` extends the Appendix A
construction to cycles (break edge + hub hierarchy + noisy total).

The table sweeps V and compares the cycle release against the
synthetic-graph baseline on worst-case (antipodal and
across-the-break) pairs.  Shape to check: polylog error, beating the
baseline's ~sqrt(V)-measured / V-guaranteed error as V grows.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_cycle_distances, release_synthetic_graph
from repro.algorithms import dijkstra_path
from repro.analysis import render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import generators

EPS = 1.0
SIZES = [64, 256, 1024, 4096]


def run_experiment() -> str:
    rng = fresh_rng(130)
    rows = []
    for n in SIZES:
        graph = generators.cycle_graph(n)
        graph = generators.assign_random_weights(graph, rng.spawn(), 0.5, 4.0)
        pairs = [
            (0, n // 2),           # antipodal
            (0, n - 1),            # across the break edge
            (n // 4, 3 * n // 4),  # antipodal, off-break
            (10, n // 2 + 10),
        ]
        exact = {}
        for x, y in pairs:
            _, exact[(x, y)] = dijkstra_path(graph, x, y)
        cycle_errors, baseline_errors = [], []
        for _ in range(TRIALS):
            release = release_cycle_distances(graph, eps=EPS, rng=rng.spawn())
            baseline = release_synthetic_graph(graph, eps=EPS, rng=rng.spawn())
            for x, y in pairs:
                cycle_errors.append(
                    abs(release.distance(x, y) - exact[(x, y)])
                )
                baseline_errors.append(
                    abs(baseline.distance(x, y) - exact[(x, y)])
                )
        rows.append(
            [
                n,
                summarize_errors(cycle_errors).mean,
                summarize_errors(baseline_errors).mean,
                2 * bounds.tree_single_source_error(n, EPS / 2, 0.05),
            ]
        )
    return render_table(
        ["V", "cycle release err", "baseline err", "~2x tree bound"],
        rows,
        title=(
            "E13 (extension)  All-pairs distances on cycles, eps=1.\n"
            "Expected shape: polylog error; overtakes the baseline's "
            "~sqrt(V) measured error as V grows."
        ),
    )


def test_table_e13(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) == len(SIZES)
    # Polylog: 64x more vertices -> < 6x more error.
    assert float(lines[-1][1]) < 6 * max(float(lines[0][1]), 1.0)
    # Beats the baseline at the largest size.
    assert float(lines[-1][1]) < float(lines[-1][2])
    # Within (a doubled) tree-style bound at every size.
    for row in lines:
        assert float(row[1]) <= float(row[3])


def test_benchmark_cycle_release(benchmark):
    rng = fresh_rng(131)
    graph = generators.cycle_graph(1024)
    benchmark(lambda: release_cycle_distances(graph, eps=EPS, rng=rng.spawn()))


if __name__ == "__main__":
    print_experiment(run_experiment())
