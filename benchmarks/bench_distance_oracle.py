"""E1 — Section 4 intro: single-pair and all-pairs distance baselines.

Reproduces the paper's opening calculation: a single distance query
needs only ``Lap(1/eps)`` noise; all-pairs needs ``~V^2/eps`` (pure,
basic composition) or ``~V sqrt(ln 1/delta)/eps`` (approx, advanced
composition).  The table shows measured per-query error for each
approach across graph sizes — the shape to check is *basic grows
quadratically, advanced linearly, single-pair stays flat*.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")  # allow `python benchmarks/bench_*.py`

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import (
    AllPairsAdvancedRelease,
    AllPairsBasicRelease,
    private_distance,
)
from repro.analysis import render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import generators

EPS = 1.0
DELTA = 1e-6
SIZES = [10, 20, 40]


def _workload(n: int, rng):
    graph = generators.erdos_renyi_graph(n, 2.0 / n, rng)
    return generators.assign_random_weights(graph, rng, 0.0, 10.0)


def run_experiment() -> str:
    rng = fresh_rng(1)
    rows = []
    for n in SIZES:
        graph = _workload(n, rng.spawn())
        pairs = [
            (graph.vertex_list()[0], t) for t in graph.vertex_list()[1:]
        ]
        single_errors, basic_errors, advanced_errors = [], [], []
        from repro.algorithms import all_pairs_dijkstra

        exact = all_pairs_dijkstra(graph)
        for _ in range(TRIALS):
            child = rng.spawn()
            basic = AllPairsBasicRelease(graph, EPS, child)
            advanced = AllPairsAdvancedRelease(graph, EPS, DELTA, child)
            for s, t in pairs:
                single_errors.append(
                    abs(private_distance(graph, s, t, EPS, child) - exact[s][t])
                )
                basic_errors.append(abs(basic.distance(s, t) - exact[s][t]))
                advanced_errors.append(
                    abs(advanced.distance(s, t) - exact[s][t])
                )
        rows.append(
            [
                n,
                summarize_errors(single_errors).mean,
                summarize_errors(basic_errors).mean,
                summarize_errors(advanced_errors).mean,
                bounds.all_pairs_basic_noise_scale(n, EPS),
                bounds.all_pairs_advanced_noise_scale(n, EPS, DELTA),
            ]
        )
    return render_table(
        [
            "V",
            "single mean err",
            "basic mean err",
            "advanced mean err",
            "basic scale (paper)",
            "advanced scale (paper)",
        ],
        rows,
        title=(
            "E1  Distance oracles (Section 4 intro), eps=1, delta=1e-6.\n"
            "Expected shape: basic ~ V^2, advanced ~ V, single flat."
        ),
    )


def test_table_e1(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    rows = parse_rows(table)
    first = [float(x) for x in rows[0]]
    last = [float(x) for x in rows[-1]]
    assert last[2] / first[2] > last[3] / first[3]  # basic grows faster


def test_benchmark_all_pairs_advanced(benchmark):
    rng = fresh_rng(2)
    graph = _workload(30, rng)
    benchmark(lambda: AllPairsAdvancedRelease(graph, EPS, DELTA, rng.spawn()))


def test_benchmark_single_query(benchmark):
    rng = fresh_rng(3)
    graph = _workload(30, rng)
    benchmark(lambda: private_distance(graph, 0, 29, EPS, rng))


if __name__ == "__main__":
    print_experiment(run_experiment())
