"""E17 — the engine: backend speedup and bit-level agreement.

Runs the library's hottest exact-recomputation path — all-pairs
distances on a 16x16 grid (V=256, the Theorem 4.7 workload shape) —
through every engine implementation and reports wall-clock seconds,
speedup over the pure-Python reference, and whether the distances
agree *bit for bit*:

* ``python`` — the dict-of-dicts reference backend;
* ``numpy`` — the CSR backend (scipy's C Dijkstra when available,
  vectorized relaxation otherwise);
* ``relaxation kernel`` — the scipy-free fallback, timed explicitly;
* ``min-plus kernel`` — dense repeated squaring (exact here because
  the weights are integer-valued, so no re-association error).

Weights are random *integers* in [1, 10]: every path sum is exactly
representable, which is what lets the table assert bit-level equality
across all four implementations instead of a tolerance.

``python benchmarks/bench_engine.py --quick`` runs a reduced 8x8
instance — the CI smoke configuration.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Tuple

sys.path.insert(0, ".")  # allow `python benchmarks/bench_engine.py`

from benchmarks.common import fresh_rng, print_experiment
from repro.algorithms.shortest_paths import all_pairs_dijkstra
from repro.analysis import render_table
from repro.engine import CSRGraph, kernels
from repro.graphs import generators
from repro.rng import Rng

GRID = 16
QUICK_GRID = 8
TRIALS = 3

#: The numpy backend must beat the reference by at least this factor on
#: the full-size instance (the ISSUE-2 acceptance bar).
REQUIRED_SPEEDUP = 5.0


def integer_grid(size: int, rng: Rng):
    """The benchmark workload: a size x size grid with random integer
    weights in [1, 10]."""
    graph = generators.grid_graph(size, size)
    weights = [float(rng.integer(1, 11)) for _ in range(graph.num_edges)]
    return graph.with_weights(weights)


def _best_of(fn: Callable[[], object], trials: int) -> Tuple[float, object]:
    """Minimum wall-clock over repeated runs, plus the last result."""
    best = float("inf")
    result: object = None
    for _ in range(trials):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_experiment(quick: bool = False) -> str:
    size = QUICK_GRID if quick else GRID
    trials = 1 if quick else TRIALS
    graph = integer_grid(size, fresh_rng(180))
    csr = CSRGraph.from_graph(graph)  # warm the compile cache

    t_python, reference = _best_of(
        lambda: all_pairs_dijkstra(graph, backend="python"), trials
    )
    t_numpy, via_numpy = _best_of(
        lambda: all_pairs_dijkstra(graph, backend="numpy"), trials
    )
    t_relax, relax_matrix = _best_of(
        lambda: kernels.relaxation_distances(csr, range(csr.n)), trials
    )
    t_minplus, minplus_matrix = _best_of(
        lambda: kernels.min_plus_apsp(kernels.dense_distance_matrix(csr)),
        trials,
    )

    def matrix_matches(matrix) -> bool:
        vertices = csr.vertices
        return all(
            matrix[i][j] == reference[s][t]
            for i, s in enumerate(vertices)
            for j, t in enumerate(vertices)
        )

    rows = [
        ["python (reference)", t_python, 1.0, True],
        ["numpy backend", t_numpy, t_python / t_numpy, via_numpy == reference],
        [
            "relaxation kernel",
            t_relax,
            t_python / t_relax,
            matrix_matches(relax_matrix),
        ],
        [
            "min-plus kernel",
            t_minplus,
            t_python / t_minplus,
            matrix_matches(minplus_matrix),
        ],
    ]
    return render_table(
        ["implementation", "seconds", "speedup", "exact match"],
        rows,
        title=(
            f"E17  Engine backends: exact all-pairs distances on a "
            f"{size}x{size} integer-weight grid (V={size * size}), "
            f"best of {trials}.\n"
            "Expected shape: numpy backend >= "
            f"{REQUIRED_SPEEDUP:.0f}x over the python reference with "
            "bit-identical distances."
        ),
        precision=4,
    )


def test_table_e17(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    rows = parse_rows(table)
    by_name = {r[0]: r for r in rows}
    # Bit-level agreement is non-negotiable for every implementation.
    assert all(r[3] == "True" for r in rows)
    # The acceptance bar only binds when the C Dijkstra is available;
    # the scipy-free fallback is asserted correct above, not fast.
    try:
        import scipy  # noqa: F401
    except ImportError:
        return
    assert float(by_name["numpy backend"][2]) >= REQUIRED_SPEEDUP


def test_quick_mode_runs():
    table = run_experiment(quick=True)
    assert "8x8" in table


def test_laplace_perturb_reweights_cheaply():
    # The per-epoch serving pattern: perturb the weight vector, rebuild
    # nothing, re-sweep.  The perturbed CSR must share structure arrays
    # with the original (the cheap re-weighting path).
    rng = fresh_rng(181)
    graph = integer_grid(QUICK_GRID, rng)
    csr = CSRGraph.from_graph(graph)
    noisy = kernels.laplace_perturb(
        csr.edge_weights, scale=1.0, rng=rng, clamp_at_zero=True
    )
    epoch = csr.with_weights(noisy)
    assert epoch.indptr is csr.indptr and epoch.indices is csr.indices
    assert (epoch.edge_weights >= 0).all()
    d = kernels.multi_source_distances(epoch, [0])
    assert d.shape == (1, csr.n)


def test_benchmark_numpy_all_pairs(benchmark):
    graph = integer_grid(GRID, fresh_rng(182))
    all_pairs_dijkstra(graph, backend="numpy")  # warm the CSR cache
    benchmark(lambda: all_pairs_dijkstra(graph, backend="numpy"))


if __name__ == "__main__":
    print_experiment(run_experiment(quick="--quick" in sys.argv[1:]))
