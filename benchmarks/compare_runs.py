#!/usr/bin/env python
"""Diff two ``BENCH_runall.json`` files and flag wall-clock regressions.

Usage::

    python benchmarks/compare_runs.py BASE.json NEW.json [--threshold 0.25]

Prints a per-experiment comparison of the recorded wall-clock seconds
and exits non-zero when any experiment present in both runs regressed
by more than ``threshold`` (default 25%, the ROADMAP's "perf
trajectory" bar).  Experiments that only exist in one of the runs are
reported but never flagged — a new experiment is not a regression.
``--require-experiments E01 E16`` bounds that tolerance: a run file
missing a named tag fails the check, so a benchmark that silently
stopped running cannot drift out of the trajectory unnoticed.

The per-query p99 latency diff of the serving experiments is
warn-only by default (CI tail latency flakes); opting in with
``--gate-p99 0.5`` promotes it to a hard gate at that relative
threshold, for environments quiet enough to hold the line.

This is the machine-readable half of the perf trajectory: CI uploads
each run's ``BENCH_runall.json`` as an artifact and runs this script
against the committed baseline, so a slow commit is flagged in the
check output instead of being discovered by eyeballing tables.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

DEFAULT_THRESHOLD = 0.25


def load_seconds(path: Path) -> Dict[str, float]:
    """Experiment tag -> recorded wall-clock seconds for one run file."""
    document = json.loads(path.read_text())
    experiments = document.get("experiments")
    if not isinstance(experiments, dict):
        raise ValueError(f"{path} is not a BENCH_runall.json report")
    return {
        tag: float(entry["seconds"])
        for tag, entry in experiments.items()
    }


def load_p99(path: Path) -> Dict[str, Tuple[float, int]]:
    """Experiment tag -> (p99 per-query latency in seconds, latency
    sample count) for the experiments that carry a ``latency`` entry
    (the serving benchmarks E16/E18/E19).  The count is printed next
    to each quantile so a "p99 improved" read on 50 samples is not
    mistaken for one on 50 000."""
    document = json.loads(path.read_text())
    experiments = document.get("experiments")
    if not isinstance(experiments, dict):
        raise ValueError(f"{path} is not a BENCH_runall.json report")
    out: Dict[str, Tuple[float, int]] = {}
    for tag, entry in experiments.items():
        latency = entry.get("latency")
        if isinstance(latency, dict) and "p99" in latency:
            out[tag] = (float(latency["p99"]), int(latency.get("count", 0)))
    return out


def compare_p99(
    base: Dict[str, Tuple[float, int]],
    new: Dict[str, Tuple[float, int]],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[List[str]], List[str]]:
    """Diff recorded p99 latencies.

    Rows are ``[tag, base_us, base_n, new_us, new_n, delta, status]``
    with latencies rendered in microseconds (per-query serving latency
    is a few µs) and each side's latency sample count alongside.
    Returns the rows and the tags whose p99 grew beyond ``threshold``.
    By default callers print those as warnings and the exit code
    stays governed by wall-clock — tail latency on a CI box is noisy
    enough that a hard gate would flake, but a silent regression is
    how a 2x p99 ships, so it is surfaced loudly.  ``--gate-p99``
    opts in to failing on them instead.
    """
    rows: List[List[str]] = []
    warned: List[str] = []
    for tag in sorted(set(base) | set(new)):
        if tag not in new:
            before, before_n = base[tag]
            rows.append(
                [
                    tag,
                    f"{before * 1e6:.1f}",
                    str(before_n),
                    "-",
                    "-",
                    "-",
                    "removed",
                ]
            )
            continue
        if tag not in base:
            after, after_n = new[tag]
            rows.append(
                [
                    tag,
                    "-",
                    "-",
                    f"{after * 1e6:.1f}",
                    str(after_n),
                    "-",
                    "new",
                ]
            )
            continue
        (before, before_n), (after, after_n) = base[tag], new[tag]
        if before <= 0.0:
            rows.append(
                [
                    tag,
                    f"{before * 1e6:.1f}",
                    str(before_n),
                    f"{after * 1e6:.1f}",
                    str(after_n),
                    "-",
                    "too fast",
                ]
            )
            continue
        delta = (after - before) / before
        status = "ok"
        if delta > threshold:
            status = f"WARN p99 >{threshold:.0%}"
            warned.append(tag)
        rows.append(
            [
                tag,
                f"{before * 1e6:.1f}",
                str(before_n),
                f"{after * 1e6:.1f}",
                str(after_n),
                f"{delta:+.1%}",
                status,
            ]
        )
    return rows, warned


def missing_experiments(
    expected: List[str],
    base: Dict[str, float],
    new: Dict[str, float],
) -> List[str]:
    """Lines describing expected experiment tags absent from a run.

    The regression diff deliberately never flags a tag that exists in
    only one file ("a new experiment is not a regression") — but that
    same tolerance lets a benchmark that silently stopped running
    drift out of the perf trajectory unnoticed.  ``--require-experiments``
    closes the hole: CI names the tags it expects, and a run file
    missing any of them fails the check instead of shrinking the
    comparison table.
    """
    lines: List[str] = []
    for tag in expected:
        sides = [
            name
            for name, run in (("base", base), ("new", new))
            if tag not in run
        ]
        if sides:
            lines.append(f"{tag} missing from {' and '.join(sides)} run")
    return lines


def compare(
    base: Dict[str, float],
    new: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[List[str]], List[str]]:
    """Build comparison rows and the list of flagged experiment tags.

    Rows are ``[tag, base_s, new_s, delta, status]``; an experiment
    regresses when its new wall-clock exceeds the base by more than
    ``threshold`` (relative).  Sub-millisecond bases are skipped — the
    relative delta of a ~0s experiment is pure timer noise.
    """
    rows: List[List[str]] = []
    flagged: List[str] = []

    def sort_key(tag: str):
        # Key on the tag's *first* number only: concatenating every
        # digit would order a multi-number tag like "E19_v4096" as
        # 194096, after single-number tags it should precede.
        match = re.search(r"\d+", tag)
        return (int(match.group()) if match else 0, tag)

    for tag in sorted(set(base) | set(new), key=sort_key):
        if tag not in new:
            rows.append([tag, f"{base[tag]:.3f}", "-", "-", "removed"])
            continue
        if tag not in base:
            rows.append([tag, "-", f"{new[tag]:.3f}", "-", "new"])
            continue
        before, after = base[tag], new[tag]
        if before < 1e-3:
            rows.append(
                [tag, f"{before:.3f}", f"{after:.3f}", "-", "too fast"]
            )
            continue
        delta = (after - before) / before
        status = "ok"
        if delta > threshold:
            status = f"REGRESSED >{threshold:.0%}"
            flagged.append(tag)
        rows.append(
            [tag, f"{before:.3f}", f"{after:.3f}", f"{delta:+.1%}", status]
        )
    return rows, flagged


def render(
    rows: List[List[str]],
    unit: str = "s",
    headers: List[str] | None = None,
) -> str:
    if headers is None:
        headers = [
            "experiment",
            f"base {unit}",
            f"new {unit}",
            "delta",
            "status",
        ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(c.rjust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="flag wall-clock regressions between two "
        "BENCH_runall.json files"
    )
    parser.add_argument("base", type=Path, help="baseline run file")
    parser.add_argument("new", type=Path, help="candidate run file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown that counts as a regression "
        "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--gate-p99",
        type=float,
        default=None,
        metavar="PCT",
        help="promote the warn-only p99 latency diff to a hard gate "
        "at this relative threshold (e.g. 0.5 = fail when any "
        "serving experiment's p99 grew more than 50%%)",
    )
    parser.add_argument(
        "--require-experiments",
        nargs="+",
        default=None,
        metavar="TAG",
        help="fail when any of these experiment tags is missing from "
        "either run file (catches a benchmark that silently stopped "
        "running, which the diff would otherwise just drop)",
    )
    args = parser.parse_args(argv)
    base_seconds = load_seconds(args.base)
    new_seconds = load_seconds(args.new)
    rows, flagged = compare(base_seconds, new_seconds, args.threshold)
    print(render(rows))
    p99_threshold = (
        args.gate_p99 if args.gate_p99 is not None else args.threshold
    )
    p99_rows, p99_warned = compare_p99(
        load_p99(args.base), load_p99(args.new), p99_threshold
    )
    p99_gated = args.gate_p99 is not None and bool(p99_warned)
    if p99_rows:
        print(
            "\nper-query p99 latency "
            + ("(gated):" if args.gate_p99 is not None else "(warn-only):")
        )
        print(
            render(
                p99_rows,
                headers=[
                    "experiment",
                    "base p99 us",
                    "base n",
                    "new p99 us",
                    "new n",
                    "delta",
                    "status",
                ],
            )
        )
        if p99_warned:
            if args.gate_p99 is not None:
                print(
                    f"p99 latency grew more than {p99_threshold:.0%} "
                    f"in {', '.join(p99_warned)} (gated by --gate-p99)",
                    file=sys.stderr,
                )
            else:
                print(
                    f"warning: p99 latency grew more than "
                    f"{p99_threshold:.0%} in {', '.join(p99_warned)} "
                    "(informational; does not fail the check)",
                    file=sys.stderr,
                )
    missing = (
        missing_experiments(
            args.require_experiments, base_seconds, new_seconds
        )
        if args.require_experiments
        else []
    )
    for line in missing:
        print(f"required experiment {line}", file=sys.stderr)
    if flagged:
        print(
            f"\n{len(flagged)} experiment(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(flagged)}",
            file=sys.stderr,
        )
        return 1
    if p99_gated:
        print(
            f"\np99 gate failed for {', '.join(p99_warned)}",
            file=sys.stderr,
        )
        return 1
    if missing:
        print(
            f"\n{len(missing)} required experiment(s) missing",
            file=sys.stderr,
        )
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
