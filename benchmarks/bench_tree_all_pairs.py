"""E3 — Theorem 4.2: all-pairs tree distances vs the naive baseline.

The paper's claim: on trees, ``O(log^2.5 V)/eps`` error instead of the
``~V/eps`` synthetic-graph baseline.  Two regimes are reported:

* **path graphs** — the baseline's worst case: distant pairs are ~V
  hops apart, so its error is a ~V-step random walk (~sqrt(V) typical,
  V/eps guaranteed).  The tree algorithm's polylog error overtakes it
  as V grows — this row family shows the measured crossover.
* **random trees** — typical paths are short (~sqrt(V) hops), so the
  baseline's *measured* error looks small even though its *guarantee*
  is still linear in V.  The table reports both measured error and the
  guaranteed bound to keep this honest: the tree algorithm's guarantee
  is polylog in both regimes.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_synthetic_graph, release_tree_all_pairs
from repro.analysis import render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import RootedTree, generators

EPS = 1.0
GAMMA = 0.05
PATH_SIZES = [256, 1024, 4096]
RANDOM_SIZES = [256, 1024]


def _measure(tree, rng, sample_pairs, rooted):
    tree_errors, baseline_errors = [], []
    for _ in range(TRIALS):
        release = release_tree_all_pairs(rooted, eps=EPS, rng=rng.spawn())
        baseline = release_synthetic_graph(tree, eps=EPS, rng=rng.spawn())
        for x, y in sample_pairs:
            true = rooted.distance(x, y)
            tree_errors.append(abs(release.distance(x, y) - true))
            # On a tree the unique x-y path's noisy weight is the
            # baseline's distance; compute it directly (fast).
            noisy = baseline.graph.path_weight(rooted.path(x, y))
            baseline_errors.append(abs(noisy - true))
    return summarize_errors(tree_errors), summarize_errors(baseline_errors)


def run_experiment() -> str:
    rng = fresh_rng(20)
    rows = []
    for kind, sizes in (("path", PATH_SIZES), ("random", RANDOM_SIZES)):
        for n in sizes:
            if kind == "path":
                tree = generators.path_graph(n)
            else:
                tree = generators.random_tree(n, rng.spawn())
            tree = generators.assign_random_weights(
                tree, rng.spawn(), 0.0, 10.0
            )
            rooted = RootedTree(tree, 0)
            vertices = tree.vertex_list()
            step = max(1, n // 8)
            sample_pairs = [
                (vertices[i], vertices[j])
                for i in range(0, n, step)
                for j in range(i + step, n, step)
            ]
            tree_summary, base_summary = _measure(
                tree, rng, sample_pairs, rooted
            )
            rows.append(
                [
                    kind,
                    n,
                    tree_summary.maximum,
                    base_summary.maximum,
                    bounds.tree_all_pairs_error(n, EPS, GAMMA),
                    bounds.synthetic_graph_distance_error(
                        n, n - 1, EPS, GAMMA
                    ),
                ]
            )
    return render_table(
        [
            "tree",
            "V",
            "Alg1+LCA max err",
            "baseline max err",
            "bound (Thm 4.2)",
            "baseline bound",
        ],
        rows,
        title=(
            "E3  All-pairs tree distances (Theorem 4.2) vs synthetic-graph "
            "baseline, eps=1.\nExpected shape: on paths the baseline error "
            "grows ~sqrt(V) measured (V guaranteed) while Alg1 stays "
            "polylog — crossover as V grows."
        ),
    )


def test_table_e3(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    path_rows = [r for r in lines if r[0] == "path"]
    assert len(path_rows) == 3
    # The tree-vs-baseline measured ratio improves as V grows on paths.
    first_ratio = float(path_rows[0][2]) / float(path_rows[0][3])
    last_ratio = float(path_rows[-1][2]) / float(path_rows[-1][3])
    assert last_ratio < first_ratio
    # At the largest path size the tree algorithm wins outright.
    assert float(path_rows[-1][2]) < float(path_rows[-1][3])
    # Guaranteed bounds: polylog beats linear at every size here.
    for row in lines:
        assert float(row[4]) < float(row[5]) * 10  # sanity: same units
    assert float(path_rows[-1][4]) < float(path_rows[-1][5])


def test_benchmark_tree_all_pairs(benchmark):
    rng = fresh_rng(21)
    tree = generators.random_tree(256, rng)
    rooted = RootedTree(tree, 0)
    benchmark(lambda: release_tree_all_pairs(rooted, eps=EPS, rng=rng.spawn()))


if __name__ == "__main__":
    print_experiment(run_experiment())
