"""E15 (ablation) — covering construction: Lemma 4.4 vs greedy.

The remark after Theorem 4.6: "for some graphs we may be able to find a
smaller k-covering than that guaranteed by Lemma 4.4", which then
lowers Algorithm 2's noise.  This ablation compares the Meir–Moon
residue-class construction against greedy set cover on several graph
families, reporting covering sizes and the resulting Algorithm 2 noise
scale.  Shape to check: both are valid coverings within the Lemma 4.4
size bound (greedy usually smaller), and a smaller |Z| directly shrinks
the noise scale.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import fresh_rng, print_experiment
from repro import release_bounded_weight
from repro.algorithms import is_k_covering, meir_moon_k_covering
from repro.algorithms.covering import greedy_k_covering
from repro.analysis import render_table
from repro.graphs import generators

EPS = 1.0
DELTA = 1e-6
K = 3


def _families(rng):
    yield "grid 12x12", generators.grid_graph(12, 12)
    yield "path 144", generators.path_graph(144)
    yield "random tree 144", generators.random_tree(144, rng.spawn())
    yield "ER(144, 0.03)", generators.erdos_renyi_graph(
        144, 0.03, rng.spawn()
    )


def run_experiment() -> str:
    rng = fresh_rng(150)
    rows = []
    for name, graph in _families(rng):
        graph = generators.assign_random_weights(graph, rng.spawn(), 0.0, 1.0)
        mm = meir_moon_k_covering(graph, K)
        greedy = greedy_k_covering(graph, K)
        assert is_k_covering(graph, mm, K)
        assert is_k_covering(graph, greedy, K)
        mm_release = release_bounded_weight(
            graph, 1.0, eps=EPS, rng=rng.spawn(), delta=DELTA, k=K,
            covering=mm,
        )
        greedy_release = release_bounded_weight(
            graph, 1.0, eps=EPS, rng=rng.spawn(), delta=DELTA, k=K,
            covering=greedy,
        )
        rows.append(
            [
                name,
                graph.num_vertices // (K + 1),  # Lemma 4.4 guarantee
                len(mm),
                len(greedy),
                mm_release.noise_scale,
                greedy_release.noise_scale,
            ]
        )
    return render_table(
        [
            "graph",
            "Lemma 4.4 cap",
            "|Z| Meir-Moon",
            "|Z| greedy",
            "noise scale MM",
            "noise scale greedy",
        ],
        rows,
        title=(
            f"E15 (ablation)  k-covering constructions at k={K}, eps=1, "
            "delta=1e-6.\nExpected shape: both within the Lemma 4.4 cap; "
            "smaller covering -> smaller Algorithm 2 noise."
        ),
    )


def test_table_e15(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) == 4
    for row in lines:
        cap, mm, greedy = int(row[1]), int(row[2]), int(row[3])
        assert mm <= cap
        # Noise scale tracks covering size: the smaller covering never
        # has the larger scale.
        scale_mm, scale_greedy = float(row[4]), float(row[5])
        if greedy < mm:
            assert scale_greedy <= scale_mm
        elif mm < greedy:
            assert scale_mm <= scale_greedy


def test_benchmark_meir_moon(benchmark):
    rng = fresh_rng(151)
    graph = generators.grid_graph(12, 12)
    benchmark(lambda: meir_moon_k_covering(graph, K))


def test_benchmark_greedy_covering(benchmark):
    rng = fresh_rng(152)
    graph = generators.grid_graph(12, 12)
    benchmark(lambda: greedy_k_covering(graph, K))


if __name__ == "__main__":
    print_experiment(run_experiment())
