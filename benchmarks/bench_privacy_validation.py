"""E11 — Definition 2.2: empirical differential-privacy validation.

Monte-Carlo check of the DP inequality for every mechanism family on a
small fixed instance with neighboring weight functions.  For each
output event S the table reports the worst empirical likelihood ratio
``max(P[S]/P'[S], P'[S]/P[S])`` against the theoretical cap ``e^eps``
(with sampling slack).  Shape to check: measured ratio <= cap for all
mechanisms.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

import math

import numpy as np

from benchmarks.common import fresh_rng, print_experiment
from repro import (
    Rng,
    private_distance,
    release_tree_single_source,
)
from repro.analysis import render_table
from repro.core import lower_bounds as lb
from repro.graphs import generators

TRIALS = 30_000


def _interval_ratio(samples1, samples2, intervals) -> float:
    worst = 0.0
    for lo, hi in intervals:
        p = float(np.mean((samples1 >= lo) & (samples1 < hi)))
        q = float(np.mean((samples2 >= lo) & (samples2 < hi)))
        if min(p, q) < 0.01:
            continue  # too rare to estimate a ratio reliably
        worst = max(worst, p / q, q / p)
    return worst


def _binary_ratio(outcomes1, outcomes2) -> float:
    worst = 0.0
    for value in (0, 1):
        p = sum(1 for o in outcomes1 if o == value) / len(outcomes1)
        q = sum(1 for o in outcomes2 if o == value) / len(outcomes2)
        if min(p, q) < 0.01:
            continue
        worst = max(worst, p / q, q / p)
    return worst


def run_experiment() -> str:
    rows = []
    eps = 0.5

    # 1. Scalar Laplace distance query on neighboring path weights.
    rng = fresh_rng(110)
    g1 = generators.path_graph(3)
    g2 = g1.with_weights({(0, 1): 1.5, (1, 2): 1.5})  # L1 distance 1
    s1 = np.array(
        [private_distance(g1, 0, 2, eps, rng) for _ in range(TRIALS)]
    )
    s2 = np.array(
        [private_distance(g2, 0, 2, eps, rng) for _ in range(TRIALS)]
    )
    ratio = _interval_ratio(s1, s2, [(1.5, 2.5), (2.5, 3.5), (3.5, 4.5)])
    rows.append(["Laplace distance query", eps, ratio, math.exp(eps)])

    # 2. Algorithm 3 edge choice on the 1-bit gadget (reduction costs
    # a factor 2 in eps).
    gadget = lb.parallel_path_gadget(1)
    w0 = lb.path_weights_from_bits([0])
    w1 = lb.path_weights_from_bits([1])
    rng = fresh_rng(111)
    o0 = [
        lb.decode_path_bits(
            1,
            lb.private_gadget_path(gadget, w0, eps, 0.2, rng)[0],
        )[0]
        for _ in range(TRIALS)
    ]
    o1 = [
        lb.decode_path_bits(
            1,
            lb.private_gadget_path(gadget, w1, eps, 0.2, rng)[0],
        )[0]
        for _ in range(TRIALS)
    ]
    rows.append(
        ["Alg3 path choice (2eps cap)", eps, _binary_ratio(o0, o1), math.exp(2 * eps)]
    )

    # 3. Algorithm 1 root-to-leaf estimate on neighboring tree weights.
    rng = fresh_rng(112)
    t1 = generators.path_graph(4)
    t2 = t1.with_weights({(1, 2): 2.0})
    s1 = np.array(
        [
            release_tree_single_source(
                t1, eps=eps, rng=rng, root=0
            ).distance_from_root(3)
            for _ in range(TRIALS // 3)
        ]
    )
    s2 = np.array(
        [
            release_tree_single_source(
                t2, eps=eps, rng=rng, root=0
            ).distance_from_root(3)
            for _ in range(TRIALS // 3)
        ]
    )
    ratio = _interval_ratio(s1, s2, [(1.0, 3.0), (3.0, 5.0), (5.0, 7.0)])
    rows.append(["Alg1 tree estimate", eps, ratio, math.exp(eps)])

    # 4. MST edge choice on the 1-bit star gadget.
    gadget = lb.star_gadget(1)
    rng = fresh_rng(113)
    o0 = [
        lb.decode_star_bits(
            1, lb.private_gadget_mst(gadget, lb.star_weights_from_bits([0]), eps, rng)[0]
        )[0]
        for _ in range(TRIALS)
    ]
    o1 = [
        lb.decode_star_bits(
            1, lb.private_gadget_mst(gadget, lb.star_weights_from_bits([1]), eps, rng)[0]
        )[0]
        for _ in range(TRIALS)
    ]
    rows.append(
        ["MST edge choice (2eps cap)", eps, _binary_ratio(o0, o1), math.exp(2 * eps)]
    )

    return render_table(
        ["mechanism", "eps", "worst measured ratio", "cap e^eps"],
        rows,
        title=(
            "E11  Empirical DP validation (Definition 2.2), neighboring "
            "inputs, 30k samples.\nExpected shape: measured ratio <= cap "
            "(up to ~5% sampling slack) for every mechanism."
        ),
    )


def test_table_e11(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) == 4
    for row in lines:
        measured, cap = float(row[2]), float(row[3])
        assert measured <= cap * 1.08  # 8% sampling slack


def test_benchmark_privacy_probe(benchmark):
    rng = fresh_rng(114)
    g = generators.path_graph(3)
    benchmark(lambda: private_distance(g, 0, 2, 0.5, rng))


if __name__ == "__main__":
    print_experiment(run_experiment())
