"""E5 — Algorithm 2 / Theorems 4.3, 4.5, 4.6: bounded-weight all-pairs
distances.

Workload: grid graphs (large diameter, so the k-covering machinery
actually engages; on small-diameter random graphs the optimal k exceeds
the diameter and a single covering vertex answers everything — a
degenerate regime the paper's bound also covers, but uninteresting).

The table sweeps V at fixed M and M at fixed V and reports, for the
approx-DP and pure-DP variants: covering parameters, measured max
error, the Theorem 4.5/4.6 predicted bounds, and the synthetic-graph
baseline's measured error and guaranteed bound.

Shapes to check:

* ``|Z| <= V/(k+1)`` (Lemma 4.4);
* measured error within the theorem bound;
* the *guaranteed* bounded-weight bound beats the baseline's
  ``(V/eps) log(E/gamma)`` guarantee in the small-M regime (the paper's
  claim is about guarantees; measured typical error of the baseline
  concentrates well below its guarantee).
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_bounded_weight, release_synthetic_graph
from repro.algorithms import all_pairs_dijkstra
from repro.analysis import render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import generators

EPS = 1.0
DELTA = 1e-6
GAMMA = 0.05
SETTINGS = [(8, 1.0), (12, 1.0), (16, 1.0), (12, 0.5), (12, 2.0)]


def _pairs(graph, n_side):
    vs = graph.vertex_list()
    anchors = [
        (0, 0),
        (0, n_side - 1),
        (n_side - 1, 0),
        (n_side - 1, n_side - 1),
        (n_side // 2, n_side // 2),
    ]
    return [(a, b) for a in anchors for b in anchors if a < b]


def run_experiment() -> str:
    rng = fresh_rng(40)
    rows = []
    for side, m in SETTINGS:
        v = side * side
        graph = generators.grid_graph(side, side)
        graph = generators.assign_random_weights(graph, rng.spawn(), 0.0, m)
        exact = all_pairs_dijkstra(graph)
        pairs = _pairs(graph, side)
        approx_errors, pure_errors, base_errors = [], [], []
        covering_size = k_used = None
        for _ in range(TRIALS):
            approx = release_bounded_weight(
                graph, m, eps=EPS, rng=rng.spawn(), delta=DELTA
            )
            # Same covering radius for the pure variant so the noise
            # regimes (Lap(~Z) vs Lap(Z^2)) are compared like-for-like.
            pure = release_bounded_weight(
                graph, m, eps=EPS, rng=rng.spawn(), k=approx.k
            )
            base = release_synthetic_graph(graph, eps=EPS, rng=rng.spawn())
            covering_size, k_used = approx.covering_size, approx.k
            approx_errors.append(
                max(abs(approx.distance(s, t) - exact[s][t]) for s, t in pairs)
            )
            pure_errors.append(
                max(abs(pure.distance(s, t) - exact[s][t]) for s, t in pairs)
            )
            base_errors.append(
                max(
                    abs(base.distance(s, t) - exact[s][t])
                    for s, t in pairs
                )
            )
        approx_bound = bounds.bounded_weight_error_approx(
            k=k_used,
            covering_size=covering_size,
            weight_bound=m,
            eps=EPS,
            delta=DELTA,
            gamma=GAMMA,
        )
        baseline_bound = bounds.synthetic_graph_distance_error(
            v, graph.num_edges, EPS, GAMMA
        )
        rows.append(
            [
                v,
                m,
                k_used,
                covering_size,
                summarize_errors(approx_errors).mean,
                summarize_errors(pure_errors).mean,
                summarize_errors(base_errors).mean,
                approx_bound,
                baseline_bound,
            ]
        )
    return render_table(
        [
            "V",
            "M",
            "k",
            "|Z|",
            "approx err",
            "pure err",
            "baseline err",
            "bound (4.5)",
            "baseline bound",
        ],
        rows,
        title=(
            "E5  Bounded-weight all-pairs distances (Algorithm 2) on "
            "grids, eps=1, delta=1e-6.\nExpected shape: |Z| <= V/(k+1); "
            "measured within bound; guaranteed bound sublinear in V and "
            "below the baseline guarantee."
        ),
    )


def test_table_e5(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) == len(SETTINGS)
    for row in lines:
        v, k, z = float(row[0]), float(row[2]), float(row[3])
        assert z <= v / (k + 1)
        assert float(row[4]) <= float(row[7])  # measured within bound
        assert float(row[7]) < float(row[8])  # guarantee beats baseline
    # Guaranteed bound grows sublinearly in V at fixed M=1:
    # V quadruples from 64 to 256; bound grows by < 3x.
    at_m1 = {float(r[0]): r for r in lines if float(r[1]) == 1.0}
    assert float(at_m1[256.0][7]) < 3.0 * float(at_m1[64.0][7])
    # Approx noise beats pure noise once |Z| is large enough
    # (advanced vs basic composition) — check at the largest V.
    assert float(at_m1[256.0][4]) < float(at_m1[256.0][5])


def test_benchmark_bounded_weight_approx(benchmark):
    rng = fresh_rng(41)
    graph = generators.grid_graph(12, 12)
    graph = generators.assign_random_weights(graph, rng, 0.0, 1.0)
    benchmark(
        lambda: release_bounded_weight(
            graph, 1.0, eps=EPS, rng=rng.spawn(), delta=DELTA
        )
    )


def test_benchmark_bounded_weight_pure(benchmark):
    rng = fresh_rng(42)
    graph = generators.grid_graph(12, 12)
    graph = generators.assign_random_weights(graph, rng, 0.0, 1.0)
    benchmark(
        lambda: release_bounded_weight(graph, 1.0, eps=EPS, rng=rng.spawn())
    )


if __name__ == "__main__":
    print_experiment(run_experiment())
