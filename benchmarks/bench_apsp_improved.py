"""E18 — improved all-pairs mechanisms vs the Section 4 baselines.

Puts the hub-set release of :mod:`repro.apsp` up against both intro
baselines (``all-pairs-basic`` pure, ``all-pairs-advanced`` approx) on
three 1024-vertex graph families — the Theorem 4.7 grid, a sparse
Erdős–Rényi graph, and a road-like random geometric graph — at
eps = 1.  Every contender is stood up through the one serving
interface (``serve(graph, ServingConfig(mechanism=...), rng)``), so
the benchmark exercises exactly what a deployment would: per
mechanism the table reports the epoch build wall-clock, the number of
released pair queries the budget was split over, the per-entry noise
scale the synopsis reports, and empirical mean/max absolute query
error over a fixed sample of uniform pairs.

Expected shape: the hub mechanisms release ``~V^{3/2}`` values instead
of ``V^2``, so their noise scale — and with it the empirical error —
sits orders of magnitude below the basic baseline and well below the
advanced one, at comparable build cost (everyone pays the same exact
multi-source sweep; the hub build draws far less noise).  At eps = 1
on unit-scale weights every mechanism here is noise-dominated; the hub
estimator's clamp-at-zero post-processing then saturates its error at
the mean true distance, which is why its pure and approx rows can
coincide while the baselines' errors track their noise scales.

The title also carries the ROADMAP's engine-native-synopsis timing
note: building an ``AllPairsSynopsis`` straight from the engine's
distance matrix (vectorized noise over the upper triangle) versus the
dict-of-dicts release-wrapping path, measured on the grid instance.

``python benchmarks/bench_apsp_improved.py --quick`` runs a reduced
256-vertex instance — the CI smoke configuration.
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, ".")  # allow `python benchmarks/bench_apsp_improved.py`

from benchmarks.common import fresh_rng, latency_summary, print_experiment
from repro import (
    AllPairsBasicRelease,
    Rng,
    ServingConfig,
    Telemetry,
    serve,
)
from repro.algorithms.shortest_paths import all_pairs_dijkstra
from repro.analysis import render_table
from repro.apsp import HubSetRelease
from repro.graphs import generators
from repro.serving.synopsis import (
    AllPairsSynopsis,
    build_all_pairs_synopsis,
)
from repro.workloads import uniform_pairs

V = 1024
QUICK_V = 256
EPS = 1.0
DELTA = 1e-6
QUERY_SAMPLE = 1500


def graph_families(v: int, rng: Rng):
    """The three seeded benchmark graphs on ``v`` vertices."""
    side = int(round(v ** 0.5))
    grid = generators.assign_random_weights(
        generators.grid_graph(side, side), rng, low=0.5, high=1.5
    )
    sparse = generators.assign_random_weights(
        generators.erdos_renyi_graph(v, 2.0 / v, rng), rng,
        low=0.5, high=1.5,
    )
    road, _ = generators.random_geometric_graph(v, 1.6 / side, rng)
    return [
        (f"grid {side}x{side}", grid),
        ("sparse ER", sparse),
        ("road-like RGG", road),
    ]


#: (label, ServingConfig) for every contender, in table order.
CONTENDERS = [
    ("all-pairs-basic", ServingConfig(mechanism="all-pairs-basic", eps=EPS)),
    (
        "all-pairs-advanced",
        ServingConfig(mechanism="all-pairs-advanced", eps=EPS, delta=DELTA),
    ),
    ("hub-set (pure)", ServingConfig(mechanism="hub-set", eps=EPS)),
    (
        "hub-set (approx)",
        ServingConfig(mechanism="hub-set", eps=EPS, delta=DELTA),
    ),
]


def _released_pairs(synopsis) -> int:
    if hasattr(synopsis, "structure"):
        return synopsis.structure.pair_count
    return synopsis.num_entries


def _synopsis_build_note(graph, rng: Rng) -> str:
    """The engine-native vs dict-of-dicts AllPairsSynopsis timing."""
    start = time.perf_counter()
    native = build_all_pairs_synopsis(graph, EPS, rng.spawn())
    t_native = time.perf_counter() - start
    start = time.perf_counter()
    wrapped = AllPairsSynopsis.from_release(
        AllPairsBasicRelease(graph, EPS, rng.spawn())
    )
    t_wrapped = time.perf_counter() - start
    assert native.num_entries == wrapped.num_entries
    return (
        f"Engine-native AllPairsSynopsis build: {t_native:.3f}s vs "
        f"{t_wrapped:.3f}s via the dict-of-dicts release path "
        f"({t_wrapped / max(t_native, 1e-9):.1f}x)."
    )


#: Records every contender's served queries; ``run_all.py`` reads the
#: merged quantiles through :func:`latency_metrics`.
_TELEMETRY = Telemetry()


def latency_metrics() -> dict | None:
    """Per-query latency quantiles of the last :func:`run_experiment`."""
    return latency_summary(_TELEMETRY)


def telemetry_bundle() -> Telemetry:
    """The experiment's bundle — ``run_all.py --profile`` attaches a
    phase profiler to its tracer for the run's attribution table."""
    return _TELEMETRY


def run_experiment(quick: bool = False) -> str:
    _TELEMETRY.clear()
    v = QUICK_V if quick else V
    rows = []
    note = ""
    for g_index, (name, graph) in enumerate(
        graph_families(v, fresh_rng(190))
    ):
        pairs = uniform_pairs(graph, QUERY_SAMPLE, fresh_rng(191 + g_index))
        sweep = all_pairs_dijkstra(
            graph, sources=list(dict.fromkeys(s for s, _ in pairs))
        )
        exact = [sweep[s][t] for s, t in pairs]
        service_rng = fresh_rng(195 + g_index)
        for label, config in CONTENDERS:
            start = time.perf_counter()
            service = serve(
                graph, config, service_rng, telemetry=_TELEMETRY
            )
            build_seconds = time.perf_counter() - start
            errors = [
                abs(service.query(s, t) - truth)
                for (s, t), truth in zip(pairs, exact)
            ]
            rows.append(
                [
                    name,
                    label,
                    build_seconds,
                    _released_pairs(service.synopsis),
                    service.synopsis.noise_scale,
                    sum(errors) / len(errors),
                    max(errors),
                ]
            )
        if not note:
            note = _synopsis_build_note(graph, fresh_rng(189))
    return render_table(
        [
            "graph",
            "mechanism",
            "build s",
            "released pairs",
            "noise scale",
            "mean abs err",
            "max abs err",
        ],
        rows,
        title=(
            f"E18  Improved all-pairs mechanisms vs the Section 4 "
            f"baselines: V={v}, eps={EPS}, delta={DELTA} (approx rows), "
            f"{QUERY_SAMPLE} sampled queries, all served through "
            f"serve(graph, ServingConfig(...)).\n"
            "Expected shape: hub-set releases ~V^1.5 values instead of "
            "V^2, so its noise scale and empirical error sit far below "
            "the basic baseline's.\n"
            + note
        ),
        precision=3,
    )


def test_table_e18(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    rows = parse_rows(table)
    by_key = {(r[0], r[1]): r for r in rows}
    graphs = {r[0] for r in rows}
    assert len(rows) == 4 * len(graphs)
    for graph in graphs:
        basic = by_key[(graph, "all-pairs-basic")]
        hub_pure = by_key[(graph, "hub-set (pure)")]
        hub_approx = by_key[(graph, "hub-set (approx)")]
        # The acceptance bar: strictly lower mean error than the
        # basic baseline on every family (incl. the sparse graph).
        assert float(hub_pure[5]) < float(basic[5])
        assert float(hub_approx[5]) < float(basic[5])
        # The asymptotic driver: far fewer released pair queries.
        assert int(hub_pure[3]) < int(basic[3])
        # Advanced composition beats the pure hub accounting at V=1024.
        assert float(hub_approx[4]) < float(hub_pure[4])


def test_quick_mode_runs():
    table = run_experiment(quick=True)
    assert "V=256" in table


def test_benchmark_hub_build(benchmark):
    rng = fresh_rng(198)
    graph = generators.assign_random_weights(
        generators.grid_graph(16, 16), rng, low=0.5, high=1.5
    )
    benchmark(lambda: HubSetRelease(graph, EPS, rng.spawn()))


if __name__ == "__main__":
    print_experiment(run_experiment(quick="--quick" in sys.argv[1:]))
