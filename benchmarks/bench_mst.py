"""E9 — Appendix B.1 / Theorems B.1, B.3: private almost-minimum
spanning trees.

Two parts: (1) the Theorem B.3 upper bound on random graphs — released
tree weight within ``2(V-1)/eps log(E/gamma)`` of the optimum, error
growing ~V; (2) the Theorem B.1 reconstruction attack on the Figure 3
(left) star gadget — exact MST leaks all bits, the private one errs on
about half and pays ~alpha in weight.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

import numpy as np

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_private_mst
from repro.algorithms import kruskal_mst, spanning_tree_weight
from repro.analysis import render_table, summarize_errors
from repro.core import lower_bounds as lb
from repro.dp import bounds
from repro.graphs import generators

EPS = 1.0
GAMMA = 0.05
SIZES = [20, 40, 80]


def run_experiment() -> str:
    rng = fresh_rng(80)
    rows = []
    for n in SIZES:
        graph = generators.erdos_renyi_graph(n, 4.0 / n, rng.spawn())
        graph = generators.assign_random_weights(graph, rng.spawn(), 0.0, 10.0)
        optimum = spanning_tree_weight(graph, kruskal_mst(graph))
        errors = []
        for _ in range(TRIALS * 2):
            release = release_private_mst(graph, eps=EPS, rng=rng.spawn())
            errors.append(release.true_weight(graph) - optimum)
        summary = summarize_errors(errors)
        rows.append(
            [
                f"G({n})",
                summary.mean,
                summary.maximum,
                bounds.mst_error(n, graph.num_edges, EPS, GAMMA),
            ]
        )
    # Lower-bound attack on the star gadget.
    n_bits, attack_eps = 80, 0.1
    gadget = lb.star_gadget(n_bits)
    hamming_fracs, weight_errors = [], []
    for _ in range(25):
        bits = rng.bits(n_bits)
        weights = lb.star_weights_from_bits(bits)
        tree, _ = lb.private_gadget_mst(
            gadget, weights, eps=attack_eps, rng=rng.spawn()
        )
        decoded = lb.decode_star_bits(n_bits, tree)
        hamming_fracs.append(lb.hamming_distance(bits, decoded) / n_bits)
        concrete = gadget.with_weights(weights)
        weight_errors.append(sum(concrete.weight(k) for k in tree))
    alpha = bounds.mst_lower_bound(n_bits + 1, attack_eps, 0.0)
    rows.append(
        [
            f"star gadget eps={attack_eps}",
            float(np.mean(weight_errors)),
            float(np.max(weight_errors)),
            alpha,
        ]
    )
    return render_table(
        ["instance", "mean err", "max err", "bound (B.3) / alpha (B.1)"],
        rows,
        title=(
            "E9  Private MST (Theorem B.3 upper bound; Theorem B.1 lower "
            "bound), eps=1 (upper rows).\nExpected shape: error ~V, below "
            "the B.3 bound; gadget error >= ~alpha."
        ),
    )


def test_table_e9(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    upper = [r for r in lines if r[0].startswith("G(")]
    assert len(upper) == len(SIZES)
    for row in upper:
        assert float(row[2]) <= float(row[3])  # within Theorem B.3
    gadget_row = [r for r in lines if r[0].startswith("star")][0]
    assert float(gadget_row[1]) >= 0.8 * float(gadget_row[3])  # >= ~alpha


def test_benchmark_private_mst(benchmark):
    rng = fresh_rng(81)
    graph = generators.erdos_renyi_graph(100, 0.05, rng)
    graph = generators.assign_random_weights(graph, rng, 0.0, 10.0)
    benchmark(lambda: release_private_mst(graph, eps=EPS, rng=rng.spawn()))


if __name__ == "__main__":
    print_experiment(run_experiment())
