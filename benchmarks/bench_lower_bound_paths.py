"""E8 — Figure 2 / Theorem 5.1 / Lemmas 5.2-5.4: the shortest-path
reconstruction lower bound.

Runs the full reduction on the parallel-path gadget: a non-private
exact solver reconstructs the secret bits perfectly (Hamming 0, path
error 0); the eps-DP Algorithm 3 errs on ~half the bits — at least the
Lemma 5.3 per-bit floor ``(1-delta)/(1+e^{2 eps})``-ish — and
consequently pays path error around the Theorem 5.1 floor ``alpha =
(V-1)(1-(1+e^eps)delta)/(1+e^{2eps})``.

Shape to check: measured private path error >= ~alpha; exact solver
error = 0 with Hamming 0 (the blatant leak).
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

import numpy as np

from benchmarks.common import fresh_rng, print_experiment
from repro.analysis import render_table
from repro.core import lower_bounds as lb
from repro.dp import bounds

N = 100  # bit positions = V - 1
EPS_VALUES = [0.05, 0.1, 0.5, 1.0, 2.0]
ATTACK_TRIALS = 30


def run_experiment() -> str:
    rng = fresh_rng(70)
    gadget = lb.parallel_path_gadget(N)
    rows = []
    # The exact (non-private) solver row.
    bits = rng.bits(N)
    exact_keys = lb.exact_gadget_path(gadget, lb.path_weights_from_bits(bits))
    exact_hamming = lb.hamming_distance(
        bits, lb.decode_path_bits(N, exact_keys)
    )
    rows.append(["exact (no DP)", exact_hamming / N, 0.0, 0.0, 0.0])
    for eps in EPS_VALUES:
        hamming_fracs, path_errors = [], []
        for _ in range(ATTACK_TRIALS):
            bits = rng.bits(N)
            weights = lb.path_weights_from_bits(bits)
            keys, _ = lb.private_gadget_path(
                gadget, weights, eps=eps, gamma=0.1, rng=rng.spawn()
            )
            decoded = lb.decode_path_bits(N, keys)
            hamming_fracs.append(lb.hamming_distance(bits, decoded) / N)
            concrete = gadget.with_weights(weights)
            path_errors.append(concrete.path_weight(keys))
        alpha = bounds.reconstruction_lower_bound(N + 1, eps, 0.0)
        floor = bounds.row_recovery_bound(2 * eps, 0.0)
        rows.append(
            [
                f"Alg3 eps={eps}",
                float(np.mean(hamming_fracs)),
                float(np.mean(path_errors)),
                alpha,
                floor,
            ]
        )
    return render_table(
        [
            "mechanism",
            "Hamming frac",
            "mean path err",
            "alpha (Thm 5.1)",
            "per-bit floor (Lem 5.3)",
        ],
        rows,
        title=(
            f"E8  Reconstruction lower bound on the Figure 2 gadget, "
            f"n={N} bits.\nExpected shape: exact solver leaks everything "
            "with zero error; DP release pays >= ~alpha error."
        ),
    )


def test_table_e8(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    parsed = parse_rows(table)
    assert len(parsed) == 1 + len(EPS_VALUES)
    exact_row = parsed[0]
    assert float(exact_row[1]) == 0.0  # perfect reconstruction
    # At the smallest eps the mean path error reaches ~alpha.
    smallest = parsed[1]
    assert float(smallest[2]) >= 0.8 * float(smallest[3])
    # Hamming fraction exceeds the per-bit floor.
    assert float(smallest[1]) >= 0.9 * float(smallest[4])
    # Reconstruction improves (Hamming falls) as eps grows.
    assert float(parsed[-1][1]) < float(parsed[1][1])


def test_benchmark_gadget_attack(benchmark):
    rng = fresh_rng(71)
    gadget = lb.parallel_path_gadget(N)

    def attack():
        bits = rng.bits(N)
        weights = lb.path_weights_from_bits(bits)
        keys, _ = lb.private_gadget_path(
            gadget, weights, eps=0.5, gamma=0.1, rng=rng.spawn()
        )
        return lb.decode_path_bits(N, keys)

    benchmark(attack)


if __name__ == "__main__":
    print_experiment(run_experiment())
