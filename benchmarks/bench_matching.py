"""E10 — Appendix B.2 / Theorems B.4, B.6: private low-weight perfect
matchings.

Upper bound on random bipartite graphs (Theorem B.6: error below
``(V/eps) log(E/gamma)``), plus the Theorem B.4 reconstruction attack
on the Figure 3 (right) hourglass instance.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

import numpy as np

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import WeightedGraph, release_private_matching
from repro.algorithms import (
    hungarian_min_cost_perfect_matching,
    matching_weight,
)
from repro.analysis import render_table, summarize_errors
from repro.core import lower_bounds as lb
from repro.dp import bounds

EPS = 1.0
GAMMA = 0.05
SIZES = [6, 12, 24]


def _bipartite(n: int, rng) -> WeightedGraph:
    graph = WeightedGraph()
    for i in range(n):
        for j in range(n):
            graph.add_edge(("L", i), ("R", j), rng.uniform(0.0, 5.0))
    return graph


def run_experiment() -> str:
    rng = fresh_rng(90)
    rows = []
    for n in SIZES:
        graph = _bipartite(n, rng.spawn())
        optimum = matching_weight(
            graph, hungarian_min_cost_perfect_matching(graph)
        )
        errors = []
        for _ in range(TRIALS * 2):
            release = release_private_matching(
                graph, eps=EPS, rng=rng.spawn(), engine="hungarian"
            )
            errors.append(release.true_weight(graph) - optimum)
        summary = summarize_errors(errors)
        rows.append(
            [
                f"K({n},{n})",
                summary.mean,
                summary.maximum,
                bounds.matching_error(
                    graph.num_vertices, graph.num_edges, EPS, GAMMA
                ),
            ]
        )
    # Lower-bound attack on the hourglass instance.
    n_bits, attack_eps = 60, 0.1
    gadget = lb.hourglass_gadget(n_bits)
    hamming_fracs, weight_errors = [], []
    for _ in range(25):
        bits = rng.bits(n_bits)
        weights = lb.hourglass_weights_from_bits(bits)
        matching, _ = lb.private_gadget_matching(
            gadget, weights, eps=attack_eps, rng=rng.spawn()
        )
        decoded = lb.decode_matching_bits(n_bits, matching)
        hamming_fracs.append(lb.hamming_distance(bits, decoded) / n_bits)
        concrete = gadget.with_weights(weights)
        weight_errors.append(
            sum(concrete.weight(u, v) for u, v in matching)
        )
    alpha = bounds.matching_lower_bound(4 * n_bits, attack_eps, 0.0)
    rows.append(
        [
            f"hourglass eps={attack_eps}",
            float(np.mean(weight_errors)),
            float(np.max(weight_errors)),
            alpha,
        ]
    )
    return render_table(
        ["instance", "mean err", "max err", "bound (B.6) / alpha (B.4)"],
        rows,
        title=(
            "E10  Private perfect matching (Theorem B.6 upper bound; "
            "Theorem B.4 lower bound), eps=1 (upper rows).\n"
            "Expected shape: error below the B.6 bound; gadget error "
            ">= ~alpha."
        ),
    )


def test_table_e10(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    upper = [r for r in lines if r[0].startswith("K(")]
    assert len(upper) == len(SIZES)
    for row in upper:
        assert float(row[2]) <= float(row[3])
    gadget_row = [r for r in lines if r[0].startswith("hourglass")][0]
    assert float(gadget_row[1]) >= 0.8 * float(gadget_row[3])


def test_benchmark_private_matching(benchmark):
    rng = fresh_rng(91)
    graph = _bipartite(16, rng)
    benchmark(
        lambda: release_private_matching(
            graph, eps=EPS, rng=rng.spawn(), engine="hungarian"
        )
    )


if __name__ == "__main__":
    print_experiment(run_experiment())
