"""E6 — Theorem 4.7: the sqrt(V) x sqrt(V) grid specialization.

The explicit lattice covering gives ``V^(1/3)``-scaling error.  The
table sweeps grid side length and reports measured error, the general
Lemma-4.4-based release, and the Theorem 4.7 bound.  Shape to check:
the specialized grid covering matches or beats the generic construction
and error grows ~V^(1/3).
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_bounded_weight, release_grid_bounded_weight
from repro.algorithms import all_pairs_dijkstra
from repro.analysis import render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import generators

EPS = 1.0
DELTA = 1e-6
GAMMA = 0.05
M = 0.5
SIDES = [6, 10, 14]


def run_experiment() -> str:
    rng = fresh_rng(50)
    rows = []
    for side in SIDES:
        v = side * side
        graph = generators.grid_graph(side, side)
        graph = generators.assign_random_weights(graph, rng.spawn(), 0.0, M)
        exact = all_pairs_dijkstra(graph)
        corners = [(0, 0), (0, side - 1), (side - 1, 0), (side - 1, side - 1)]
        centers = [(side // 2, side // 2)]
        pairs = [
            (a, b)
            for a in corners + centers
            for b in corners + centers
            if a < b
        ]
        grid_errors, generic_errors = [], []
        grid_z = None
        for _ in range(TRIALS):
            grid_release = release_grid_bounded_weight(
                graph, side, side, M, eps=EPS, rng=rng.spawn(), delta=DELTA
            )
            generic = release_bounded_weight(
                graph, M, eps=EPS, rng=rng.spawn(), delta=DELTA
            )
            grid_z = grid_release.covering_size
            grid_errors.append(
                max(
                    abs(grid_release.distance(a, b) - exact[a][b])
                    for a, b in pairs
                )
            )
            generic_errors.append(
                max(
                    abs(generic.distance(a, b) - exact[a][b])
                    for a, b in pairs
                )
            )
        rows.append(
            [
                side,
                v,
                grid_z,
                summarize_errors(grid_errors).mean,
                summarize_errors(generic_errors).mean,
                bounds.grid_error_approx(v, M, EPS, DELTA, GAMMA),
            ]
        )
    return render_table(
        [
            "side",
            "V",
            "|Z| grid",
            "grid covering err",
            "generic covering err",
            "bound (Thm 4.7)",
        ],
        rows,
        title=(
            "E6  Grid distances (Theorem 4.7), eps=1, delta=1e-6, "
            f"M={M}.\nExpected shape: error ~ V^(1/3), within the bound."
        ),
    )


def test_table_e6(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) == len(SIDES)
    for row in lines:
        measured, bound = float(row[3]), float(row[5])
        assert measured <= bound
    # Sublinear: V grows 5.4x from side 6 to 14; error grows < 3x.
    assert float(lines[-1][3]) < 3.0 * max(float(lines[0][3]), 0.5)


def test_benchmark_grid_release(benchmark):
    rng = fresh_rng(51)
    side = 12
    graph = generators.grid_graph(side, side)
    graph = generators.assign_random_weights(graph, rng, 0.0, M)
    benchmark(
        lambda: release_grid_bounded_weight(
            graph, side, side, M, eps=EPS, rng=rng.spawn(), delta=DELTA
        )
    )


if __name__ == "__main__":
    print_experiment(run_experiment())
