#!/usr/bin/env python
"""Regenerate every experiment table (E1-E13) in one run.

Usage:  python benchmarks/run_all.py [> tables.txt]

This is what EXPERIMENTS.md's tables are produced from; the run is
fully deterministic (seed in benchmarks/common.py).
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks import (
    bench_bounded_weight,
    bench_covering_ablation,
    bench_cycle,
    bench_histogram,
    bench_distance_oracle,
    bench_grid,
    bench_lower_bound_paths,
    bench_matching,
    bench_mst,
    bench_path_hierarchy,
    bench_privacy_validation,
    bench_private_paths,
    bench_scaling,
    bench_serving,
    bench_tree_all_pairs,
    bench_tree_single_source,
)

EXPERIMENTS = [
    ("E1", bench_distance_oracle),
    ("E2", bench_tree_single_source),
    ("E3", bench_tree_all_pairs),
    ("E4", bench_path_hierarchy),
    ("E5", bench_bounded_weight),
    ("E6", bench_grid),
    ("E7", bench_private_paths),
    ("E8", bench_lower_bound_paths),
    ("E9", bench_mst),
    ("E10", bench_matching),
    ("E11", bench_privacy_validation),
    ("E12", bench_scaling),
    ("E13", bench_cycle),
    ("E14", bench_histogram),
    ("E15", bench_covering_ablation),
    ("E16", bench_serving),
]


def main() -> None:
    only = set(sys.argv[1:])
    for tag, module in EXPERIMENTS:
        if only and tag not in only:
            continue
        print(f"==== {tag} " + "=" * 60)
        print(module.run_experiment())
        print()


if __name__ == "__main__":
    main()
