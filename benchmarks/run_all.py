#!/usr/bin/env python
"""Regenerate every experiment table (E1-E19) in one run.

Usage:  python benchmarks/run_all.py [E5 E19 ...] [--profile] [> tables.txt]

This is what EXPERIMENTS.md's tables are produced from; the run is
fully deterministic (seed in benchmarks/common.py).

Besides the printed tables, the run writes ``BENCH_runall.json`` to
the working directory: per-experiment wall-clock seconds plus every
data row of every table (numeric cells coerced to numbers), so the
performance trajectory of the repo can be tracked machine-readably
across commits instead of by diffing rendered text.

``--profile`` additionally attaches a
:class:`repro.telemetry.profile.PhaseProfiler` to each serving
experiment's telemetry bundle (the modules exposing
``telemetry_bundle()``) and folds the per-phase attribution rows into
the report under ``phases`` — so a perf regression in the trajectory
points at the phase that slowed down, not just the experiment.
Allocation tracing stays off while profiling: tracemalloc would
distort the very timings the report exists to track.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, ".")

from benchmarks import (
    bench_apsp_improved,
    bench_bounded_weight,
    bench_covering_ablation,
    bench_cycle,
    bench_engine,
    bench_histogram,
    bench_distance_oracle,
    bench_grid,
    bench_lower_bound_paths,
    bench_matching,
    bench_mst,
    bench_path_hierarchy,
    bench_privacy_validation,
    bench_private_paths,
    bench_scaling,
    bench_serving,
    bench_sharding,
    bench_tree_all_pairs,
    bench_tree_single_source,
)
from benchmarks.common import SEED, parse_rows

EXPERIMENTS = [
    ("E1", bench_distance_oracle),
    ("E2", bench_tree_single_source),
    ("E3", bench_tree_all_pairs),
    ("E4", bench_path_hierarchy),
    ("E5", bench_bounded_weight),
    ("E6", bench_grid),
    ("E7", bench_private_paths),
    ("E8", bench_lower_bound_paths),
    ("E9", bench_mst),
    ("E10", bench_matching),
    ("E11", bench_privacy_validation),
    ("E12", bench_scaling),
    ("E13", bench_cycle),
    ("E14", bench_histogram),
    ("E15", bench_covering_ablation),
    ("E16", bench_serving),
    ("E17", bench_engine),
    ("E18", bench_apsp_improved),
    ("E19", bench_sharding),
]

REPORT_PATH = Path("BENCH_runall.json")


def _coerce(cell: str) -> object:
    """Parse a table cell back into a number where possible, so the
    JSON report carries metrics as numbers rather than strings."""
    for parser in (int, float):
        try:
            return parser(cell)
        except ValueError:
            continue
    return cell


def _profiler_for(module):
    """A fresh phase profiler attached to the module's telemetry
    bundle, or None when the module has no bundle to observe."""
    bundle_of = getattr(module, "telemetry_bundle", None)
    if bundle_of is None:
        return None
    bundle = bundle_of()
    if not bundle.tracer.enabled:
        return None
    from repro.telemetry import PhaseProfiler

    return PhaseProfiler(trace_allocations=False).attach(bundle.tracer)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "only",
        nargs="*",
        metavar="TAG",
        help="experiment tags to run (default: all); a filtered run "
        "never rewrites the report",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach a phase profiler to each serving experiment's "
        "telemetry bundle and record per-phase attribution rows",
    )
    args = parser.parse_args()
    only = set(args.only)
    report: dict = {
        "seed": SEED,
        "generated_at_unix": time.time(),
        "experiments": {},
    }
    for tag, module in EXPERIMENTS:
        if only and tag not in only:
            continue
        print(f"==== {tag} " + "=" * 60)
        profiler = _profiler_for(module) if args.profile else None
        start = time.perf_counter()
        table = module.run_experiment()
        elapsed = time.perf_counter() - start
        print(table)
        print()
        entry = {
            "module": module.__name__,
            "seconds": round(elapsed, 4),
            "rows": [[_coerce(c) for c in row] for row in parse_rows(table)],
        }
        # Serving experiments record per-query latency quantiles into
        # a telemetry bundle; fold them into the perf trajectory.
        latency_metrics = getattr(module, "latency_metrics", None)
        if latency_metrics is not None:
            latency = latency_metrics()
            if latency is not None:
                entry["latency"] = latency
        if profiler is not None:
            profiler.detach()
            entry["phases"] = profiler.phase_summary()
        report["experiments"][tag] = entry
    report["total_seconds"] = round(
        sum(e["seconds"] for e in report["experiments"].values()), 4
    )
    if only:
        # A filtered run is a spot check, not a perf snapshot — never
        # clobber the full-run report with a partial one.
        print(
            f"filtered run ({', '.join(sorted(only))}); "
            f"not rewriting {REPORT_PATH}",
            file=sys.stderr,
        )
        return
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"wrote {REPORT_PATH} "
        f"({len(report['experiments'])} experiments, "
        f"{report['total_seconds']}s)",
        file=sys.stderr,
    )


if __name__ == "__main__":
    main()
