#!/usr/bin/env python
"""Stitch per-commit ``BENCH_runall.json`` artifacts into one series.

Usage::

    python benchmarks/history.py RUNS_DIR [--experiment E16] \
        [--json history.json] [--baseline-out baseline.json]

CI uploads every run's ``BENCH_runall.json`` as an artifact; collect a
set of them (one per commit) into a directory and this script stitches
them — ordered by each run's recorded ``generated_at_unix``, falling
back to filename — into a longitudinal per-experiment series of
wall-clock seconds and per-query p99 latency.  That turns the pairwise
check of ``compare_runs.py`` ("did THIS commit regress?") into a
trajectory ("has E16 been creeping up for five commits?").

Outputs:

* a text table per experiment (oldest run first), or one experiment
  with ``--experiment``;
* ``--json`` writes the stitched ``repro-bench-history`` document;
* ``--baseline-out`` re-emits the *newest* run verbatim — a
  ``BENCH_runall.json``-shaped file directly consumable as the
  ``base`` argument of ``compare_runs.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

HISTORY_FORMAT = "repro-bench-history"
HISTORY_VERSION = 1


def load_run(path: Path) -> Dict[str, object]:
    """Parse one ``BENCH_runall.json`` artifact into a run record."""
    document = json.loads(path.read_text())
    experiments = document.get("experiments")
    if not isinstance(experiments, dict):
        raise ValueError(f"{path} is not a BENCH_runall.json report")
    return {
        "label": path.stem,
        "path": str(path),
        "generated_at_unix": document.get("generated_at_unix"),
        "seed": document.get("seed"),
        "total_seconds": document.get("total_seconds"),
        "document": document,
    }


def load_runs(directory: Path) -> List[Dict[str, object]]:
    """Every ``*.json`` run artifact in ``directory``, oldest first.

    Ordering key is each run's ``generated_at_unix``; artifacts
    missing it sort by filename after the timestamped ones (CI always
    stamps, so in practice this only matters for hand-made files).
    """
    paths = sorted(directory.glob("*.json"))
    if not paths:
        raise ValueError(f"no *.json run artifacts in {directory}")
    runs = [load_run(path) for path in paths]
    stamped = [r for r in runs if r["generated_at_unix"] is not None]
    unstamped = [r for r in runs if r["generated_at_unix"] is None]
    stamped.sort(key=lambda r: (r["generated_at_unix"], r["label"]))
    return stamped + unstamped


def stitch(runs: List[Dict[str, object]]) -> Dict[str, object]:
    """The longitudinal document: per-experiment parallel series.

    ``experiments[tag]`` holds three lists aligned with ``runs`` —
    wall-clock ``seconds``, per-query ``p99`` latency (seconds), and
    latency sample ``count`` — with ``None`` where a run predates (or
    dropped) the experiment, so series stay aligned across a history
    in which experiments come and go.
    """
    tags: List[str] = []
    for run in runs:
        for tag in run["document"]["experiments"]:
            if tag not in tags:
                tags.append(tag)
    experiments: Dict[str, Dict[str, List[Optional[float]]]] = {}
    for tag in tags:
        seconds: List[Optional[float]] = []
        p99: List[Optional[float]] = []
        count: List[Optional[int]] = []
        for run in runs:
            entry = run["document"]["experiments"].get(tag)
            if entry is None:
                seconds.append(None)
                p99.append(None)
                count.append(None)
                continue
            seconds.append(float(entry["seconds"]))
            latency = entry.get("latency")
            if isinstance(latency, dict) and "p99" in latency:
                p99.append(float(latency["p99"]))
                count.append(int(latency.get("count", 0)))
            else:
                p99.append(None)
                count.append(None)
        experiments[tag] = {
            "seconds": seconds,
            "p99": p99,
            "count": count,
        }
    return {
        "format": HISTORY_FORMAT,
        "version": HISTORY_VERSION,
        "runs": [
            {
                "label": run["label"],
                "generated_at_unix": run["generated_at_unix"],
                "seed": run["seed"],
                "total_seconds": run["total_seconds"],
            }
            for run in runs
        ],
        "experiments": experiments,
    }


def render_history(
    history: Dict[str, object], experiment: str | None = None
) -> str:
    """Text tables, one per experiment, oldest run first."""
    runs = history["runs"]
    experiments = history["experiments"]
    if experiment is not None:
        if experiment not in experiments:
            known = ", ".join(sorted(experiments))
            raise ValueError(
                f"no experiment {experiment!r} in the stitched runs; "
                f"known: {known}"
            )
        experiments = {experiment: experiments[experiment]}
    blocks: List[str] = []
    for tag, series in experiments.items():
        rows: List[List[str]] = []
        for i, run in enumerate(runs):
            seconds = series["seconds"][i]
            p99 = series["p99"][i]
            count = series["count"][i]
            rows.append(
                [
                    run["label"],
                    "-" if seconds is None else f"{seconds:.3f}",
                    "-" if p99 is None else f"{p99 * 1e6:.1f}",
                    "-" if count is None else str(count),
                ]
            )
        headers = ["run", "seconds", "p99 us", "n"]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows))
            for i in range(len(headers))
        ]
        lines = [
            tag,
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(c.rjust(widths[i]) for i, c in enumerate(row))
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="stitch BENCH_runall.json artifacts into a "
        "longitudinal per-experiment series"
    )
    parser.add_argument(
        "runs_dir",
        type=Path,
        help="directory of per-commit BENCH_runall.json artifacts",
    )
    parser.add_argument(
        "--experiment",
        default=None,
        help="only render this experiment's series (e.g. E16)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        dest="json_out",
        help="also write the stitched repro-bench-history document",
    )
    parser.add_argument(
        "--baseline-out",
        type=Path,
        default=None,
        help="re-emit the newest run verbatim (BENCH_runall-shaped; "
        "usable as compare_runs.py's base)",
    )
    args = parser.parse_args(argv)
    try:
        runs = load_runs(args.runs_dir)
        history = stitch(runs)
        rendered = render_history(history, args.experiment)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Artifacts land before stdout: a closed pipe downstream must not
    # cost us the stitched document.
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(history, indent=2))
    if args.baseline_out is not None:
        args.baseline_out.write_text(
            json.dumps(runs[-1]["document"], indent=2)
        )
    print(rendered)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
