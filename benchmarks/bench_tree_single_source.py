"""E2 — Algorithm 1 / Theorem 4.1 / Figure 1: single-source tree
distances.

Measured max error across all root-to-vertex distances vs the paper's
``O(log^1.5 V log(1/gamma))/eps`` bound, across tree sizes and shapes.
Shape to check: error grows polylogarithmically (not linearly) in V and
stays below the bound.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_tree_single_source
from repro.analysis import render_table, summarize_errors
from repro.dp import bounds
from repro.graphs import RootedTree, generators

EPS = 1.0
GAMMA = 0.05
SIZES = [32, 128, 512, 2048]


def _tree(kind: str, n: int, rng):
    if kind == "random":
        tree = generators.random_tree(n, rng)
    elif kind == "path":
        tree = generators.path_graph(n)
    elif kind == "star":
        tree = generators.star_graph(n)
    else:
        raise ValueError(kind)
    return generators.assign_random_weights(tree, rng, 0.0, 10.0)


def run_experiment() -> str:
    rng = fresh_rng(10)
    rows = []
    for kind in ("random", "path", "star"):
        for n in SIZES:
            tree = _tree(kind, n, rng.spawn())
            rooted = RootedTree(tree, 0)
            max_errors = []
            depth = None
            for _ in range(TRIALS):
                release = release_tree_single_source(
                    rooted, eps=EPS, rng=rng.spawn()
                )
                depth = release.recursion_depth
                max_errors.append(
                    max(
                        abs(
                            release.distance_from_root(v)
                            - rooted.distance_from_root(v)
                        )
                        for v in tree.vertices()
                    )
                )
            bound = bounds.tree_single_source_error(n, EPS, GAMMA / n)
            summary = summarize_errors(max_errors)
            rows.append(
                [kind, n, depth, summary.mean, summary.maximum, bound]
            )
    return render_table(
        ["tree", "V", "depth", "mean max-err", "worst max-err", "bound (Thm 4.1)"],
        rows,
        title=(
            "E2  Single-source tree distances (Algorithm 1), eps=1.\n"
            "Expected shape: error ~ log^1.5 V, far below the V/eps "
            "baseline, within the bound."
        ),
    )


def test_table_e2(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    rows = parse_rows(table)
    assert len(rows) == 12  # 3 families x 4 sizes
    for row in rows:
        measured_worst, bound = float(row[4]), float(row[5])
        assert measured_worst <= bound
    # Polylog growth: error at V=2048 is < 6x error at V=32 per family.
    random_rows = [r for r in rows if r[0] == "random"]
    assert float(random_rows[-1][3]) < 6 * float(random_rows[0][3])


def test_benchmark_tree_single_source(benchmark):
    rng = fresh_rng(11)
    tree = _tree("random", 512, rng)
    rooted = RootedTree(tree, 0)
    benchmark(
        lambda: release_tree_single_source(rooted, eps=EPS, rng=rng.spawn())
    )


if __name__ == "__main__":
    print_experiment(run_experiment())
