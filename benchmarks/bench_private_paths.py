"""E7 — Algorithm 3 / Theorem 5.5 / Corollary 5.6: private shortest
paths.

Two tables:

1. error stratified by the hop count of the true shortest path — the
   shape to check is *linear growth in hops, independent of V*, staying
   below the ``(2k/eps) log(E/gamma)`` bound;
2. the hop-bias ablation — with the ``(1/eps) log(E/gamma)`` offset
   removed, low-hop accuracy degrades on heavy-weight graphs.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")

from benchmarks.common import TRIALS, fresh_rng, print_experiment
from repro import release_private_paths
from repro.algorithms import dijkstra_path, path_hops
from repro.analysis import path_error, render_table, summarize_errors
from repro.dp import bounds
from repro.workloads import grid_road_network, pairs_by_hop_bucket

EPS = 1.0
GAMMA = 0.05
SIDE = 14
BUCKETS = [(1, 2), (3, 5), (6, 10), (11, 18), (19, 26)]


def run_experiment() -> str:
    rng = fresh_rng(60)
    network = grid_road_network(SIDE, SIDE, rng.spawn(), block_minutes=8.0)
    graph = network.graph
    buckets = pairs_by_hop_bucket(
        graph, rng.spawn(), per_bucket=8, buckets=BUCKETS
    )
    rows = []
    for bucket in BUCKETS:
        pairs = buckets[bucket]
        if not pairs:
            continue
        biased_errors, unbiased_errors, hops_seen = [], [], []
        for _ in range(TRIALS):
            biased = release_private_paths(graph, EPS, GAMMA, rng.spawn())
            unbiased = release_private_paths(
                graph, EPS, GAMMA, rng.spawn(), hop_bias=False
            )
            for s, t in pairs:
                true_path, _ = dijkstra_path(graph, s, t)
                hops_seen.append(path_hops(true_path))
                biased_errors.append(path_error(graph, biased.path(s, t)))
                unbiased_errors.append(
                    path_error(graph, unbiased.path(s, t))
                )
        mean_hops = sum(hops_seen) / len(hops_seen)
        bound = bounds.shortest_path_error(
            int(max(hops_seen)), graph.num_edges, EPS, GAMMA
        )
        rows.append(
            [
                f"{bucket[0]}-{bucket[1]}",
                mean_hops,
                summarize_errors(biased_errors).mean,
                summarize_errors(biased_errors).maximum,
                summarize_errors(unbiased_errors).mean,
                bound,
            ]
        )
    worst_case = bounds.shortest_path_error_worst_case(
        graph.num_vertices, graph.num_edges, EPS, GAMMA
    )
    return render_table(
        [
            "hop bucket",
            "mean hops",
            "Alg3 mean err",
            "Alg3 max err",
            "no-bias mean err",
            "bound (Thm 5.5)",
        ],
        rows,
        title=(
            "E7  Private shortest paths (Algorithm 3) on a "
            f"{SIDE}x{SIDE} road grid, eps=1.\n"
            "Expected shape: error grows with hops, not V "
            f"(Cor 5.6 worst case here: {worst_case:.1f})."
        ),
    )


def test_table_e7(capsys):
    table = run_experiment()
    with capsys.disabled():
        print_experiment(table)
    from benchmarks.common import parse_rows

    lines = parse_rows(table)
    assert len(lines) >= 4
    # Error grows with hops: last bucket mean > first bucket mean.
    assert float(lines[-1][2]) > float(lines[0][2])
    # Always below the per-bucket Theorem 5.5 bound.
    for row in lines:
        assert float(row[3]) <= float(row[5])


def test_benchmark_private_paths_release(benchmark):
    rng = fresh_rng(61)
    network = grid_road_network(SIDE, SIDE, rng)
    benchmark(
        lambda: release_private_paths(network.graph, EPS, GAMMA, rng.spawn())
    )


def test_benchmark_all_pairs_paths_query(benchmark):
    rng = fresh_rng(62)
    network = grid_road_network(8, 8, rng)
    release = release_private_paths(network.graph, EPS, GAMMA, rng)
    benchmark(lambda: release.paths_from((0, 0)))


if __name__ == "__main__":
    print_experiment(run_experiment())
